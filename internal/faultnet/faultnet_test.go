package faultnet

import (
	"errors"
	"math"
	"net"
	"testing"
	"time"

	"planetp/internal/directory"
	"planetp/internal/metrics"
)

// replay runs the same synthetic traffic through a fresh plan.
func replay(cfg Config, msgs int) (*Plan, []Fate) {
	p := New(cfg, nil)
	fates := make([]Fate, 0, msgs)
	for i := 0; i < msgs; i++ {
		from := directory.PeerID(i % 7)
		to := directory.PeerID((i * 3) % 11)
		now := time.Duration(i) * time.Second
		fates = append(fates, p.Fate(now, from, to))
	}
	return p, fates
}

func TestSameSeedSameSchedule(t *testing.T) {
	cfg := Config{Seed: 42, Drop: 0.25, Dup: 0.1, Delay: 0.2, DialFail: 0.05}
	p1, f1 := replay(cfg, 5000)
	p2, f2 := replay(cfg, 5000)
	if p1.ScheduleHash() != p2.ScheduleHash() {
		t.Fatalf("schedule hashes differ: %x vs %x", p1.ScheduleHash(), p2.ScheduleHash())
	}
	if p1.Counts() != p2.Counts() {
		t.Fatalf("counts differ: %+v vs %+v", p1.Counts(), p2.Counts())
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatalf("fate %d differs: %+v vs %+v", i, f1[i], f2[i])
		}
	}
}

func TestDifferentSeedDifferentSchedule(t *testing.T) {
	cfg := Config{Seed: 1, Drop: 0.25}
	p1, _ := replay(cfg, 2000)
	cfg.Seed = 2
	p2, _ := replay(cfg, 2000)
	if p1.ScheduleHash() == p2.ScheduleHash() {
		t.Fatal("different seeds produced identical schedules")
	}
}

// Determinism must hold per-pair regardless of interleaving with other
// pairs: the pair (1,2)'s fates depend only on its own message ordinals.
func TestPairStreamsIndependent(t *testing.T) {
	cfg := Config{Seed: 7, Drop: 0.3, Delay: 0.3}
	// Run A: only pair (1,2).
	a := New(cfg, nil)
	var fa []Fate
	for i := 0; i < 100; i++ {
		fa = append(fa, a.Fate(0, 1, 2))
	}
	// Run B: pair (1,2) interleaved with unrelated traffic.
	b := New(cfg, nil)
	var fb []Fate
	for i := 0; i < 100; i++ {
		b.Fate(0, 3, 4)
		fb = append(fb, b.Fate(0, 1, 2))
		b.Fate(0, 5, 6)
	}
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("pair stream perturbed by unrelated traffic at %d: %+v vs %+v", i, fa[i], fb[i])
		}
	}
}

func TestRatesApproximateConfig(t *testing.T) {
	cfg := Config{Seed: 3, Drop: 0.25, Dup: 0.10, Delay: 0.40, DialFail: 0.05}
	p, _ := replay(cfg, 20000)
	c := p.Counts()
	check := func(name string, got int64, want float64) {
		frac := float64(got) / float64(c.Messages)
		if math.Abs(frac-want) > 0.02 {
			t.Errorf("%s rate = %.3f, want ~%.2f", name, frac, want)
		}
	}
	// Drop/delay/dup rates are measured among non-failed sends.
	nonFailed := c.Messages - c.DialFails
	_ = nonFailed
	check("dial-fail", c.DialFails, 0.05)
	check("drop", c.Drops, 0.25*0.95)
	check("delay", c.Delays, 0.40*0.95)
	check("dup", c.Dups, 0.10*0.95)
}

func TestDelayWithinBounds(t *testing.T) {
	cfg := Config{Seed: 9, Delay: 1.0, DelayMin: 50 * time.Millisecond, DelayMax: 300 * time.Millisecond}
	p := New(cfg, nil)
	for i := 0; i < 1000; i++ {
		f := p.Fate(0, 0, 1)
		if f.Delay < cfg.DelayMin || f.Delay > cfg.DelayMax {
			t.Fatalf("delay %v outside [%v, %v]", f.Delay, cfg.DelayMin, cfg.DelayMax)
		}
	}
}

func TestPartitionSplitAndHeal(t *testing.T) {
	p := New(Config{Seed: 1, Partitions: []Partition{{
		Name: "cut", At: 10 * time.Second, Heal: 20 * time.Second,
		Side: SplitHalves(10),
	}}}, nil)

	// Before the split: clean.
	if f := p.Fate(5*time.Second, 0, 9); f.Partitioned {
		t.Fatal("partitioned before At")
	}
	// During: cross-side blocked, same-side clean.
	if fate := p.Fate(15*time.Second, 0, 9); !fate.Partitioned || !fate.Failed() {
		t.Fatalf("cross-side send not blocked during partition: %+v", fate)
	}
	if fate := p.Fate(15*time.Second, 0, 4); fate.Partitioned {
		t.Fatal("same-side send blocked")
	}
	if fate := p.Fate(15*time.Second, 5, 9); fate.Partitioned {
		t.Fatal("same-side (upper) send blocked")
	}
	// After heal: clean again.
	if fate := p.Fate(25*time.Second, 0, 9); fate.Partitioned {
		t.Fatal("partitioned after heal")
	}
}

func TestPermanentPartition(t *testing.T) {
	p := New(Config{Partitions: []Partition{{
		Name: "forever", At: time.Second, Heal: 0, Side: SplitHalves(4),
	}}}, nil)
	if fate := p.Fate(time.Hour, 0, 3); !fate.Partitioned {
		t.Fatal("Heal <= At should mean the partition never heals")
	}
}

func TestMetricsWired(t *testing.T) {
	reg := metrics.NewRegistry()
	p := New(Config{Seed: 5, Drop: 1.0}, reg)
	p.Fate(0, 0, 1)
	if got := reg.Snapshot().Get("faultnet_drops_total"); got != 1 {
		t.Fatalf("faultnet_drops_total = %d, want 1", got)
	}
}

func TestDialerInjectsFaults(t *testing.T) {
	clock := func() time.Duration { return 0 }
	base := func(_ directory.PeerID, _ string, _ time.Duration) (net.Conn, error) {
		t.Fatal("base dialer must not be reached for injected failures")
		return nil, nil
	}
	// Dial failures surface ErrInjected without touching the network.
	p := New(Config{Seed: 1, DialFail: 1.0}, nil)
	if _, err := p.Dialer(0, clock, base)(1, "x", time.Second); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	// Partition blocks likewise.
	p = New(Config{Partitions: []Partition{{At: 0, Heal: 0, Side: SplitHalves(2)}}}, nil)
	if _, err := p.Dialer(0, clock, base)(1, "x", time.Second); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	// Drop yields a working blackhole: writes succeed, reads fail.
	p = New(Config{Seed: 1, Drop: 1.0}, nil)
	conn, err := p.Dialer(0, clock, base)(1, "x", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := conn.Write([]byte("hello")); n != 5 || err != nil {
		t.Fatalf("blackhole write = %d, %v", n, err)
	}
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("blackhole read should fail")
	}
	conn.Close()
}

func TestCleanPlanPassesThrough(t *testing.T) {
	p := New(Config{Seed: 1}, nil)
	for i := 0; i < 100; i++ {
		if fate := p.Fate(0, 0, 1); fate != (Fate{}) {
			t.Fatalf("clean plan injected a fault: %+v", fate)
		}
	}
}

func TestConnKillDeterministicAndCounted(t *testing.T) {
	cfg := Config{Seed: 13, ConnKill: 0.3}
	p1, f1 := replay(cfg, 4000)
	p2, f2 := replay(cfg, 4000)
	if p1.ScheduleHash() != p2.ScheduleHash() {
		t.Fatalf("schedule hashes differ: %x vs %x", p1.ScheduleHash(), p2.ScheduleHash())
	}
	kills := int64(0)
	for i := range f1 {
		if f1[i].ConnKill != f2[i].ConnKill {
			t.Fatalf("fate %d differs", i)
		}
		if f1[i].ConnKill {
			kills++
		}
	}
	got := p1.Counts().ConnKills
	if got != kills || got == 0 {
		t.Fatalf("ConnKills = %d, want %d (> 0)", got, kills)
	}
	rate := float64(kills) / 4000
	if math.Abs(rate-0.3) > 0.05 {
		t.Fatalf("kill rate %.3f far from configured 0.3", rate)
	}
	reg := metrics.NewRegistry()
	pm := New(cfg, reg)
	for i := 0; i < 100; i++ {
		pm.Fate(0, 1, 2)
	}
	if c := reg.Snapshot().Get("faultnet_conn_kills_total"); c != pm.Counts().ConnKills {
		t.Fatalf("metric %d != counts %d", c, pm.Counts().ConnKills)
	}
}

// SendFate adapts fates to the transport's per-send hook: dial failures
// and partitions surface as errors, drop/delay/kill as verdict fields.
func TestSendFateMapsFates(t *testing.T) {
	p := New(Config{Seed: 3, DialFail: 1}, nil)
	hook := p.SendFate(1, func() time.Duration { return 0 })
	if err, _, _, _ := hook(2); !errors.Is(err, ErrInjected) {
		t.Fatalf("dial-fail fate should map to ErrInjected, got %v", err)
	}
	p = New(Config{Seed: 3, ConnKill: 1}, nil)
	hook = p.SendFate(1, func() time.Duration { return 0 })
	err, drop, delay, kill := hook(2)
	if err != nil || drop || delay != 0 || !kill {
		t.Fatalf("ConnKill fate mapped wrong: %v %v %v %v", err, drop, delay, kill)
	}
	p = New(Config{Seed: 3, Drop: 1}, nil)
	hook = p.SendFate(1, func() time.Duration { return 0 })
	if err, drop, _, _ := hook(2); err != nil || !drop {
		t.Fatalf("Drop fate mapped wrong: %v %v", err, drop)
	}
}
