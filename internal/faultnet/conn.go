// net.Conn-level fault shims for the live transport. A Plan mounts onto
// internal/transport through two seams:
//
//   - SendFate matches transport.FateHook: the pooled transport consults
//     it once per send attempt, so per-message fates (drop, delay, dial
//     failure, partition, conn kill) apply even when the underlying
//     connection was dialed long ago and is being reused.
//   - Dialer matches transport.DialHook for connection-establishment
//     faults on the dials that do happen — a dropped message becomes a
//     blackhole connection whose writes succeed but go nowhere, a delayed
//     message becomes a connection that stalls before its first write.
//
// Duplication is not modeled at the conn level (each envelope is framed
// exactly once onto a stream, and TCP never duplicates bytes).
package faultnet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"planetp/internal/directory"
)

// ErrInjected marks transport-level failures manufactured by a Plan, so
// tests and callers can tell injected faults from real network errors.
var ErrInjected = errors.New("faultnet: injected fault")

// DialFunc matches transport.Transport's DialHook seam.
type DialFunc func(to directory.PeerID, addr string, timeout time.Duration) (net.Conn, error)

// Dialer wraps base with fault injection for messages sent by self. clock
// supplies the driver time partitions are scripted against (typically
// time-since-start). A nil base dials real TCP.
func (p *Plan) Dialer(self directory.PeerID, clock func() time.Duration, base DialFunc) DialFunc {
	if base == nil {
		base = func(_ directory.PeerID, addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	return func(to directory.PeerID, addr string, timeout time.Duration) (net.Conn, error) {
		f := p.Fate(clock(), self, to)
		switch {
		case f.Partitioned:
			return nil, fmt.Errorf("%w: partitioned from peer %d", ErrInjected, to)
		case f.DialFail:
			return nil, fmt.Errorf("%w: dial to peer %d failed", ErrInjected, to)
		case f.Drop:
			// The connection "succeeds" but the payload vanishes: the
			// sender observes a clean send, the receiver nothing.
			return &blackholeConn{local: localAddr{}, remote: localAddr{}}, nil
		}
		conn, err := base(to, addr, timeout)
		if err != nil {
			return nil, err
		}
		if f.Delay > 0 {
			return &delayConn{Conn: conn, delay: f.Delay}, nil
		}
		return conn, nil
	}
}

// SendFate adapts the Plan to transport.Transport's FateHook seam: one
// verdict per send attempt, independent of whether the attempt dials a
// fresh connection or reuses a pooled one. clock supplies the driver time
// partitions are scripted against (typically time-since-start).
//
// The returned values map onto the transport's fate semantics: err fails
// the attempt outright (dial failures, partitions — counted as dial
// failures and fed to suppression exactly as a refused dial would be);
// drop loses the message after a "successful" send; delay stalls the
// attempt before transmission; kill tears the connection carrying the
// message mid-exchange.
func (p *Plan) SendFate(self directory.PeerID, clock func() time.Duration) func(to directory.PeerID) (err error, drop bool, delay time.Duration, kill bool) {
	return func(to directory.PeerID) (error, bool, time.Duration, bool) {
		f := p.Fate(clock(), self, to)
		switch {
		case f.Partitioned:
			return fmt.Errorf("%w: partitioned from peer %d", ErrInjected, to), false, 0, false
		case f.DialFail:
			return fmt.Errorf("%w: dial to peer %d failed", ErrInjected, to), false, 0, false
		}
		return nil, f.Drop, f.Delay, f.ConnKill
	}
}

// localAddr is a placeholder net.Addr for synthetic connections.
type localAddr struct{}

func (localAddr) Network() string { return "faultnet" }
func (localAddr) String() string  { return "faultnet:blackhole" }

// blackholeConn swallows writes and reports a closed stream on read —
// the observable behavior of a message lost after a successful send.
type blackholeConn struct {
	local, remote net.Addr
	closed        bool
}

func (c *blackholeConn) Read([]byte) (int, error) {
	// A reply will never come; surface it as the peer closing on us so
	// RPC callers fail fast instead of burning their whole deadline.
	return 0, errors.New("faultnet: response dropped")
}
func (c *blackholeConn) Write(p []byte) (int, error) {
	if c.closed {
		return 0, net.ErrClosed
	}
	return len(p), nil
}
func (c *blackholeConn) Close() error                { c.closed = true; return nil }
func (c *blackholeConn) LocalAddr() net.Addr         { return c.local }
func (c *blackholeConn) RemoteAddr() net.Addr        { return c.remote }
func (c *blackholeConn) SetDeadline(time.Time) error { return nil }
func (c *blackholeConn) SetReadDeadline(time.Time) error {
	return nil
}
func (c *blackholeConn) SetWriteDeadline(time.Time) error { return nil }

// delayConn stalls the first write by delay, injecting latency ahead of
// the envelope. Later writes on the same connection pass through — the
// message as a whole was late, not each byte.
type delayConn struct {
	net.Conn
	delay   time.Duration
	delayed bool
}

func (c *delayConn) Write(p []byte) (int, error) {
	if !c.delayed {
		c.delayed = true
		time.Sleep(c.delay)
	}
	return c.Conn.Write(p)
}

// KillMode selects how a KillableConn dies.
type KillMode int

const (
	// KillWrite tears the next write mid-stream: the first TornBytes
	// bytes reach the wire, the rest never do, and the write errors. The
	// request provably never decodes on the far side.
	KillWrite KillMode = iota
	// KillRead lets writes through but fails every read after the next
	// write completes — the request was delivered, the response never
	// arrives. Reads before that write (a pool's checkout-time staleness
	// probe) still hit the real connection, so the conn looks healthy
	// until the request is committed.
	KillRead
)

// KillableConn wraps a live connection so tests can kill it
// deterministically mid-RPC — the conn-level fate a pooled transport must
// survive. Kill arms the failure; the mode decides whether the request
// write tears or the response read fails. In both modes the conn behaves
// normally until the armed exchange actually commits a write, so a pool's
// checkout-time validation sees a healthy conn and the failure lands
// mid-RPC, where the interesting recovery paths live. Safe for concurrent
// use.
type KillableConn struct {
	net.Conn
	mu       sync.Mutex
	armed    bool
	readDead bool
	mode     KillMode
	torn     int
}

// Kill arms the connection to fail. For KillWrite, tornBytes of the next
// write still reach the wire (0 = nothing does) before the error; for
// KillRead, tornBytes is ignored.
func (c *KillableConn) Kill(mode KillMode, tornBytes int) {
	c.mu.Lock()
	c.armed, c.mode, c.torn = true, mode, tornBytes
	c.mu.Unlock()
}

func (c *KillableConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	armed, mode, torn := c.armed, c.mode, c.torn
	if armed {
		// The armed exchange is committing its request: reads are dead
		// from here on, whichever mode.
		c.readDead = true
	}
	c.mu.Unlock()
	if !armed || mode != KillWrite {
		return c.Conn.Write(p)
	}
	n := 0
	if torn > 0 && torn < len(p) {
		n, _ = c.Conn.Write(p[:torn])
	}
	return n, fmt.Errorf("%w: connection killed (torn write)", ErrInjected)
}

func (c *KillableConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	dead := c.readDead
	c.mu.Unlock()
	if dead {
		return 0, fmt.Errorf("%w: connection killed (torn read)", ErrInjected)
	}
	return c.Conn.Read(p)
}
