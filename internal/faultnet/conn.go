// net.Conn-level fault shim for the live transport. A Plan mounts onto
// internal/transport through its DialHook seam: connection attempts can
// be failed (dial faults, partitions), and established connections can be
// degraded — a dropped message becomes a blackhole connection whose
// writes succeed but go nowhere, a delayed message becomes a connection
// that stalls before its first write. Duplication is not modeled at the
// conn level (one connection carries exactly one envelope in PlanetP's
// wire model, and TCP never duplicates a stream).
package faultnet

import (
	"errors"
	"fmt"
	"net"
	"time"

	"planetp/internal/directory"
)

// ErrInjected marks transport-level failures manufactured by a Plan, so
// tests and callers can tell injected faults from real network errors.
var ErrInjected = errors.New("faultnet: injected fault")

// DialFunc matches transport.Transport's DialHook seam.
type DialFunc func(to directory.PeerID, addr string, timeout time.Duration) (net.Conn, error)

// Dialer wraps base with fault injection for messages sent by self. clock
// supplies the driver time partitions are scripted against (typically
// time-since-start). A nil base dials real TCP.
func (p *Plan) Dialer(self directory.PeerID, clock func() time.Duration, base DialFunc) DialFunc {
	if base == nil {
		base = func(_ directory.PeerID, addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	return func(to directory.PeerID, addr string, timeout time.Duration) (net.Conn, error) {
		f := p.Fate(clock(), self, to)
		switch {
		case f.Partitioned:
			return nil, fmt.Errorf("%w: partitioned from peer %d", ErrInjected, to)
		case f.DialFail:
			return nil, fmt.Errorf("%w: dial to peer %d failed", ErrInjected, to)
		case f.Drop:
			// The connection "succeeds" but the payload vanishes: the
			// sender observes a clean send, the receiver nothing.
			return &blackholeConn{local: localAddr{}, remote: localAddr{}}, nil
		}
		conn, err := base(to, addr, timeout)
		if err != nil {
			return nil, err
		}
		if f.Delay > 0 {
			return &delayConn{Conn: conn, delay: f.Delay}, nil
		}
		return conn, nil
	}
}

// localAddr is a placeholder net.Addr for synthetic connections.
type localAddr struct{}

func (localAddr) Network() string { return "faultnet" }
func (localAddr) String() string  { return "faultnet:blackhole" }

// blackholeConn swallows writes and reports a closed stream on read —
// the observable behavior of a message lost after a successful send.
type blackholeConn struct {
	local, remote net.Addr
	closed        bool
}

func (c *blackholeConn) Read([]byte) (int, error) {
	// A reply will never come; surface it as the peer closing on us so
	// RPC callers fail fast instead of burning their whole deadline.
	return 0, errors.New("faultnet: response dropped")
}
func (c *blackholeConn) Write(p []byte) (int, error) {
	if c.closed {
		return 0, net.ErrClosed
	}
	return len(p), nil
}
func (c *blackholeConn) Close() error                { c.closed = true; return nil }
func (c *blackholeConn) LocalAddr() net.Addr         { return c.local }
func (c *blackholeConn) RemoteAddr() net.Addr        { return c.remote }
func (c *blackholeConn) SetDeadline(time.Time) error { return nil }
func (c *blackholeConn) SetReadDeadline(time.Time) error {
	return nil
}
func (c *blackholeConn) SetWriteDeadline(time.Time) error { return nil }

// delayConn stalls the first write by delay, injecting latency ahead of
// the envelope. Later writes on the same connection pass through — the
// message as a whole was late, not each byte.
type delayConn struct {
	net.Conn
	delay   time.Duration
	delayed bool
}

func (c *delayConn) Write(p []byte) (int, error) {
	if !c.delayed {
		c.delayed = true
		time.Sleep(c.delay)
	}
	return c.Conn.Write(p)
}
