// Package golomb implements Golomb run-length coding of non-negative
// integers, as used by PlanetP to compress sparse Bloom filters before
// gossiping them (Section 7.1 of the paper).
//
// A Golomb code with parameter M encodes a value v as a unary quotient
// q = v / M followed by a binary remainder r = v % M using the truncated
// binary encoding. For geometrically distributed inputs — such as the gaps
// between set bits in a sparse bit vector — choosing M near 0.69/p (p the
// bit density) yields near-entropy compression, which is why the paper found
// it to outperform gzip on Bloom filters.
package golomb

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// ErrCorrupt is returned when a decoder runs off the end of its input or
// encounters an impossible encoding.
var ErrCorrupt = errors.New("golomb: corrupt input")

// BitWriter accumulates individual bits into a byte slice, most significant
// bit first within each byte.
type BitWriter struct {
	buf  []byte
	nbit uint8 // bits used in the last byte (0 means last byte is full)
}

// NewBitWriter returns an empty BitWriter.
func NewBitWriter() *BitWriter { return &BitWriter{} }

// WriteBit appends a single bit (any non-zero b writes 1).
func (w *BitWriter) WriteBit(b uint) {
	if w.nbit == 0 {
		w.buf = append(w.buf, 0)
		w.nbit = 8
	}
	if b != 0 {
		w.buf[len(w.buf)-1] |= 1 << (w.nbit - 1)
	}
	w.nbit--
}

// WriteBits appends the low n bits of v, most significant first. n must be
// at most 64.
func (w *BitWriter) WriteBits(v uint64, n uint) {
	for i := int(n) - 1; i >= 0; i-- {
		w.WriteBit(uint(v>>uint(i)) & 1)
	}
}

// WriteUnary appends q one-bits followed by a terminating zero-bit.
func (w *BitWriter) WriteUnary(q uint64) {
	for i := uint64(0); i < q; i++ {
		w.WriteBit(1)
	}
	w.WriteBit(0)
}

// Len returns the number of whole bytes needed to hold the written bits.
func (w *BitWriter) Len() int { return len(w.buf) }

// Bits returns the total number of bits written.
func (w *BitWriter) Bits() int { return len(w.buf)*8 - int(w.nbit) }

// Bytes returns the accumulated bytes. Unused trailing bits are zero.
func (w *BitWriter) Bytes() []byte { return w.buf }

// BitReader consumes bits from a byte slice in the order BitWriter wrote
// them.
type BitReader struct {
	buf []byte
	pos int // absolute bit position
}

// NewBitReader returns a reader over buf.
func NewBitReader(buf []byte) *BitReader { return &BitReader{buf: buf} }

// ReadBit returns the next bit, or an error at end of input.
func (r *BitReader) ReadBit() (uint, error) {
	byteIdx := r.pos >> 3
	if byteIdx >= len(r.buf) {
		return 0, ErrCorrupt
	}
	bit := uint(r.buf[byteIdx]>>(7-uint(r.pos&7))) & 1
	r.pos++
	return bit, nil
}

// ReadBits reads n bits (n <= 64) into the low bits of the result.
func (r *BitReader) ReadBits(n uint) (uint64, error) {
	var v uint64
	for i := uint(0); i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
	}
	return v, nil
}

// ReadUnary reads a unary-coded quantity (count of ones before a zero).
// The limit guards against corrupt input producing unbounded loops.
func (r *BitReader) ReadUnary(limit uint64) (uint64, error) {
	var q uint64
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 0 {
			return q, nil
		}
		q++
		if q > limit {
			return 0, ErrCorrupt
		}
	}
}

// Pos returns the current absolute bit position.
func (r *BitReader) Pos() int { return r.pos }

// Encoder writes Golomb-coded values with a fixed parameter M.
type Encoder struct {
	w *BitWriter
	m uint64
	b uint   // ceil(log2(m))
	t uint64 // 2^b - m, the truncated-binary threshold
}

// NewEncoder returns an Encoder with parameter m (m >= 1).
func NewEncoder(m uint64) *Encoder {
	if m < 1 {
		panic(fmt.Sprintf("golomb: invalid parameter M=%d", m))
	}
	b := uint(bitsFor(m))
	return &Encoder{w: NewBitWriter(), m: m, b: b, t: (uint64(1) << b) - m}
}

// bitsFor returns ceil(log2(m)) with bitsFor(1) == 0.
func bitsFor(m uint64) int {
	if m <= 1 {
		return 0
	}
	return bits.Len64(m - 1)
}

// Put encodes one value.
func (e *Encoder) Put(v uint64) {
	q := v / e.m
	r := v % e.m
	e.w.WriteUnary(q)
	if e.m == 1 {
		return
	}
	// Truncated binary encoding of the remainder: the first t values use
	// b-1 bits; the rest use b bits offset by t.
	if r < e.t {
		e.w.WriteBits(r, e.b-1)
	} else {
		e.w.WriteBits(r+e.t, e.b)
	}
}

// Bytes returns the encoded byte stream.
func (e *Encoder) Bytes() []byte { return e.w.Bytes() }

// Bits returns the number of bits emitted so far.
func (e *Encoder) Bits() int { return e.w.Bits() }

// Decoder reads Golomb-coded values with a fixed parameter M.
type Decoder struct {
	r *BitReader
	m uint64
	b uint
	t uint64
	// maxQuotient bounds unary runs so corrupt input fails fast.
	maxQuotient uint64
}

// NewDecoder returns a Decoder over buf with parameter m.
func NewDecoder(buf []byte, m uint64) *Decoder {
	if m < 1 {
		panic(fmt.Sprintf("golomb: invalid parameter M=%d", m))
	}
	b := uint(bitsFor(m))
	return &Decoder{
		r: NewBitReader(buf), m: m, b: b, t: (uint64(1) << b) - m,
		maxQuotient: uint64(len(buf))*8 + 1,
	}
}

// Get decodes one value.
func (d *Decoder) Get() (uint64, error) {
	q, err := d.r.ReadUnary(d.maxQuotient)
	if err != nil {
		return 0, err
	}
	if d.m == 1 {
		return q, nil
	}
	r, err := d.r.ReadBits(d.b - 1)
	if err != nil {
		return 0, err
	}
	if r >= d.t {
		bit, err := d.r.ReadBit()
		if err != nil {
			return 0, err
		}
		r = r<<1 | uint64(bit) - d.t
	}
	// q*m + r overflowing uint64 cannot come from our encoder; fail
	// instead of returning a wrapped value.
	if q > (math.MaxUint64-r)/d.m {
		return 0, ErrCorrupt
	}
	return q*d.m + r, nil
}

// OptimalM returns the Golomb parameter that (approximately) minimizes the
// code length for gap sequences whose underlying bit density is p, i.e. the
// probability that any given bit is set. The classical rule is
// M = round(-1/log2(1-p)) ≈ 0.6931/p for small p.
func OptimalM(p float64) uint64 {
	if p <= 0 {
		return 1 << 30 // effectively raw binary; gaps are enormous
	}
	if p >= 1 {
		return 1
	}
	m := math.Round(-1 / math.Log2(1-p))
	if m < 1 {
		return 1
	}
	return uint64(m)
}

// EncodeGaps Golomb-encodes the gaps between successive sorted positions.
// positions must be strictly increasing. The first value encoded is
// positions[0], then positions[i]-positions[i-1]-1 for each subsequent one
// (the -1 exploits strict monotonicity to shave a bit per gap).
func EncodeGaps(positions []uint64, m uint64) ([]byte, error) {
	e := NewEncoder(m)
	prev := int64(-1)
	for _, p := range positions {
		if int64(p) <= prev {
			return nil, fmt.Errorf("golomb: positions not strictly increasing at %d", p)
		}
		e.Put(p - uint64(prev+1))
		prev = int64(p)
	}
	return e.Bytes(), nil
}

// DecodeGaps reverses EncodeGaps, returning count positions. count is
// validated against the input length before any allocation, so a hostile
// count cannot force a huge buffer.
func DecodeGaps(buf []byte, m uint64, count int) ([]uint64, error) {
	if count < 0 {
		return nil, ErrCorrupt
	}
	// Every encoded value costs at least one bit (its unary terminator),
	// so more values than input bits is corrupt by construction.
	if uint64(count) > uint64(len(buf))*8 {
		return nil, ErrCorrupt
	}
	d := NewDecoder(buf, m)
	out := make([]uint64, 0, count)
	next := uint64(0) // smallest position the next value may take
	overflowed := false
	for i := 0; i < count; i++ {
		gap, err := d.Get()
		if err != nil {
			return nil, err
		}
		// Positions must stay strictly increasing in uint64; any
		// wraparound means the input is corrupt.
		if overflowed {
			return nil, ErrCorrupt
		}
		p := next + gap
		if p < next {
			return nil, ErrCorrupt
		}
		out = append(out, p)
		next = p + 1
		overflowed = next == 0
	}
	return out, nil
}
