package golomb

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBitWriterReaderRoundTrip(t *testing.T) {
	w := NewBitWriter()
	pattern := []uint{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0, 0, 0, 1}
	for _, b := range pattern {
		w.WriteBit(b)
	}
	if got := w.Bits(); got != len(pattern) {
		t.Fatalf("Bits() = %d, want %d", got, len(pattern))
	}
	r := NewBitReader(w.Bytes())
	for i, want := range pattern {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatalf("ReadBit(%d): %v", i, err)
		}
		if got != want {
			t.Fatalf("bit %d = %d, want %d", i, got, want)
		}
	}
}

func TestBitWriterWriteBits(t *testing.T) {
	w := NewBitWriter()
	w.WriteBits(0b1011, 4)
	w.WriteBits(0xFF, 8)
	w.WriteBits(0, 3)
	r := NewBitReader(w.Bytes())
	if v, _ := r.ReadBits(4); v != 0b1011 {
		t.Errorf("first field = %b", v)
	}
	if v, _ := r.ReadBits(8); v != 0xFF {
		t.Errorf("second field = %x", v)
	}
	if v, _ := r.ReadBits(3); v != 0 {
		t.Errorf("third field = %b", v)
	}
}

func TestBitReaderEOF(t *testing.T) {
	r := NewBitReader([]byte{0xAA})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatalf("within bounds: %v", err)
	}
	if _, err := r.ReadBit(); err != ErrCorrupt {
		t.Fatalf("expected ErrCorrupt past end, got %v", err)
	}
}

func TestUnary(t *testing.T) {
	w := NewBitWriter()
	for q := uint64(0); q < 20; q++ {
		w.WriteUnary(q)
	}
	r := NewBitReader(w.Bytes())
	for q := uint64(0); q < 20; q++ {
		got, err := r.ReadUnary(100)
		if err != nil {
			t.Fatalf("ReadUnary: %v", err)
		}
		if got != q {
			t.Fatalf("unary %d decoded as %d", q, got)
		}
	}
}

func TestUnaryLimit(t *testing.T) {
	r := NewBitReader([]byte{0xFF, 0xFF})
	if _, err := r.ReadUnary(5); err != ErrCorrupt {
		t.Fatalf("expected ErrCorrupt for runaway unary, got %v", err)
	}
}

func TestBitsFor(t *testing.T) {
	cases := map[uint64]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10}
	for m, want := range cases {
		if got := bitsFor(m); got != want {
			t.Errorf("bitsFor(%d) = %d, want %d", m, got, want)
		}
	}
}

func TestEncoderDecoderSmallValues(t *testing.T) {
	for _, m := range []uint64{1, 2, 3, 4, 5, 7, 8, 10, 64, 100} {
		e := NewEncoder(m)
		for v := uint64(0); v < 200; v++ {
			e.Put(v)
		}
		d := NewDecoder(e.Bytes(), m)
		for v := uint64(0); v < 200; v++ {
			got, err := d.Get()
			if err != nil {
				t.Fatalf("M=%d v=%d: %v", m, v, err)
			}
			if got != v {
				t.Fatalf("M=%d: decoded %d, want %d", m, got, v)
			}
		}
	}
}

func TestEncoderDecoderRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		m := uint64(rng.Intn(500) + 1)
		vals := make([]uint64, 1+rng.Intn(300))
		for i := range vals {
			vals[i] = uint64(rng.Intn(10000))
		}
		e := NewEncoder(m)
		for _, v := range vals {
			e.Put(v)
		}
		d := NewDecoder(e.Bytes(), m)
		for i, v := range vals {
			got, err := d.Get()
			if err != nil {
				t.Fatalf("trial %d M=%d idx %d: %v", trial, m, i, err)
			}
			if got != v {
				t.Fatalf("trial %d M=%d idx %d: got %d want %d", trial, m, i, got, v)
			}
		}
	}
}

// Property: encode/decode round-trips arbitrary bounded gap values for a
// spread of Golomb parameters.
func TestQuickRoundTrip(t *testing.T) {
	f := func(raw []uint16, mRaw uint8) bool {
		m := uint64(mRaw)%257 + 1
		e := NewEncoder(m)
		for _, v := range raw {
			e.Put(uint64(v))
		}
		d := NewDecoder(e.Bytes(), m)
		for _, v := range raw {
			got, err := d.Get()
			if err != nil || got != uint64(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimalM(t *testing.T) {
	// For small p, M ≈ 0.693/p.
	if m := OptimalM(0.01); m < 60 || m > 80 {
		t.Errorf("OptimalM(0.01) = %d, want ≈69", m)
	}
	if m := OptimalM(0.5); m != 1 {
		t.Errorf("OptimalM(0.5) = %d, want 1", m)
	}
	if m := OptimalM(0); m < 1<<20 {
		t.Errorf("OptimalM(0) should be huge, got %d", m)
	}
	if m := OptimalM(1); m != 1 {
		t.Errorf("OptimalM(1) = %d, want 1", m)
	}
}

func TestEncodeDecodeGaps(t *testing.T) {
	positions := []uint64{0, 1, 5, 6, 100, 10000, 10001}
	buf, err := EncodeGaps(positions, 64)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeGaps(buf, 64, len(positions))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, positions) {
		t.Fatalf("round trip: got %v want %v", got, positions)
	}
}

func TestEncodeGapsRejectsUnsorted(t *testing.T) {
	if _, err := EncodeGaps([]uint64{5, 5}, 8); err == nil {
		t.Fatal("expected error for duplicate positions")
	}
	if _, err := EncodeGaps([]uint64{5, 3}, 8); err == nil {
		t.Fatal("expected error for decreasing positions")
	}
}

// Property: gap encoding round-trips any strictly increasing position set.
func TestQuickGaps(t *testing.T) {
	f := func(deltas []uint16, mRaw uint8) bool {
		m := uint64(mRaw)%100 + 1
		positions := make([]uint64, 0, len(deltas))
		cur := uint64(0)
		for _, d := range deltas {
			cur += uint64(d) + 1 // strictly increasing
			positions = append(positions, cur)
		}
		buf, err := EncodeGaps(positions, m)
		if err != nil {
			return false
		}
		got, err := DecodeGaps(buf, m, len(positions))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, positions)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Sparse bit vectors with density p should compress to roughly the entropy
// bound rather than the raw bitmap size.
func TestCompressionBeatsRawBitmap(t *testing.T) {
	const nbits = 400000 // the paper's 50KB filter
	const nset = 2000    // sparse
	rng := rand.New(rand.NewSource(7))
	seen := map[uint64]bool{}
	positions := make([]uint64, 0, nset)
	for len(positions) < nset {
		p := uint64(rng.Intn(nbits))
		if !seen[p] {
			seen[p] = true
			positions = append(positions, p)
		}
	}
	sortU64(positions)
	m := OptimalM(float64(nset) / float64(nbits))
	buf, err := EncodeGaps(positions, m)
	if err != nil {
		t.Fatal(err)
	}
	rawBytes := nbits / 8
	if len(buf) >= rawBytes/4 {
		t.Fatalf("compressed %d bytes; expected < %d (raw %d)", len(buf), rawBytes/4, rawBytes)
	}
}

func sortU64(v []uint64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j-1] > v[j]; j-- {
			v[j-1], v[j] = v[j], v[j-1]
		}
	}
}

func BenchmarkEncode1000Gaps(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	positions := make([]uint64, 1000)
	cur := uint64(0)
	for i := range positions {
		cur += uint64(rng.Intn(400)) + 1
		positions[i] = cur
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeGaps(positions, 256); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode1000Gaps(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	positions := make([]uint64, 1000)
	cur := uint64(0)
	for i := range positions {
		cur += uint64(rng.Intn(400)) + 1
		positions[i] = cur
	}
	buf, err := EncodeGaps(positions, 256)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeGaps(buf, 256, len(positions)); err != nil {
			b.Fatal(err)
		}
	}
}
