package golomb

import (
	"testing"
)

// FuzzDecodeGaps feeds arbitrary bytes, parameters, and counts to the
// gap decoder: it must return positions or ErrCorrupt, never panic, hang,
// or allocate proportionally to a hostile count.
func FuzzDecodeGaps(f *testing.F) {
	good, _ := EncodeGaps([]uint64{3, 17, 64, 65, 4000}, 23)
	f.Add(good, uint64(23), 5)
	f.Add([]byte{}, uint64(1), 0)
	f.Add([]byte{0xff, 0xff, 0xff}, uint64(1), 3)
	f.Add([]byte{0x00}, uint64(1<<62), 1)
	f.Add([]byte{0x80}, uint64(2), 1<<30)
	f.Fuzz(func(t *testing.T, buf []byte, m uint64, count int) {
		if m == 0 {
			m = 1 // m >= 1 is the documented caller contract
		}
		positions, err := DecodeGaps(buf, m, count)
		if err != nil {
			return
		}
		if len(positions) != count {
			t.Fatalf("decoded %d positions, want %d", len(positions), count)
		}
		for i := 1; i < len(positions); i++ {
			if positions[i] <= positions[i-1] {
				t.Fatalf("positions not strictly increasing: %d then %d",
					positions[i-1], positions[i])
			}
		}
	})
}

// FuzzGapsRoundTrip derives a strictly increasing position set from the
// fuzz input and demands encode→decode identity for any parameter.
func FuzzGapsRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3}, uint64(7))
	f.Add([]byte{0, 0, 0, 255}, uint64(1))
	f.Add([]byte("gossip"), uint64(64))
	f.Fuzz(func(t *testing.T, gaps []byte, m uint64) {
		if m == 0 {
			m = 1
		}
		if m > 1<<32 {
			m = 1 << 32
		}
		positions := make([]uint64, 0, len(gaps))
		pos := uint64(0)
		for _, g := range gaps {
			pos += uint64(g) + 1
			positions = append(positions, pos)
		}
		enc, err := EncodeGaps(positions, m)
		if err != nil {
			t.Fatalf("encode strictly increasing positions: %v", err)
		}
		dec, err := DecodeGaps(enc, m, len(positions))
		if err != nil {
			t.Fatalf("decode own encoding: %v", err)
		}
		if len(dec) != len(positions) {
			t.Fatalf("round trip length %d != %d", len(dec), len(positions))
		}
		for i := range dec {
			if dec[i] != positions[i] {
				t.Fatalf("round trip mismatch at %d: %d != %d", i, dec[i], positions[i])
			}
		}
	})
}
