package metrics

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if r.Counter("x_total") != c {
		t.Fatal("re-registration returned a different counter")
	}
}

func TestGaugeBasics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_us", []int64{10, 100, 1000})
	for _, v := range []int64{5, 10, 11, 100, 500, 5000} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["lat_us"]
	want := []int64{2, 2, 1, 1} // <=10: {5,10}; <=100: {11,100}; <=1000: {500}; +Inf: {5000}
	if len(s.Counts) != len(want) {
		t.Fatalf("counts = %v", s.Counts)
	}
	for i := range want {
		if s.Counts[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], want[i], s.Counts)
		}
	}
	if s.Count != 6 || s.Sum != 5+10+11+100+500+5000 {
		t.Fatalf("count=%d sum=%d", s.Count, s.Sum)
	}
}

// Every instrument and the registry itself must be safe as nil — the
// repo-wide convention that lets instrumented code run unconditionally.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("a")
	g := r.Gauge("b")
	h := r.Histogram("c", []int64{1})
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(9)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("nil registry WriteJSON: %v", err)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	h := r.Histogram("h", []int64{50})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(int64(j % 100))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}

func TestSnapshotJSONAndDelta(t *testing.T) {
	r := NewRegistry()
	r.Counter("msgs_total").Add(10)
	r.Gauge("online").Set(3)
	r.Histogram("lat", []int64{1, 2}).Observe(1)
	before := r.Snapshot()

	r.Counter("msgs_total").Add(5)
	r.Histogram("lat", nil).Observe(2)
	after := r.Snapshot()

	d := after.Delta(before)
	if d.Get("msgs_total") != 5 {
		t.Fatalf("delta counter = %d, want 5", d.Get("msgs_total"))
	}
	if d.Histograms["lat"].Count != 1 {
		t.Fatalf("delta histogram count = %d, want 1", d.Histograms["lat"].Count)
	}
	if d.Gauges["online"] != 3 {
		t.Fatalf("delta gauge = %d, want 3 (instantaneous)", d.Gauges["online"])
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round Snapshot
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if round.Get("msgs_total") != 15 {
		t.Fatalf("round-tripped counter = %d, want 15", round.Get("msgs_total"))
	}
}

func TestSnapshotNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("b")
	r.Counter("a")
	names := r.Snapshot().Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
}

// The acceptance bar: a counter increment must cost < 10 ns.
func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// The no-op path must be at least as cheap.
func BenchmarkCounterIncNil(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_lat_us", []int64{100, 500, 1000, 5000, 10000, 50000, 100000})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i & 0xFFFF))
	}
}
