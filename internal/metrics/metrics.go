// Package metrics is PlanetP's zero-dependency observability substrate:
// atomic counters, gauges, and fixed-bucket histograms registered by name
// in a Registry, with snapshot/delta export to JSON.
//
// The design has two load-bearing properties:
//
//  1. Hot-path updates are a single atomic add — no locks, no maps, no
//     allocation. Instrumented code resolves its instruments once (at
//     construction) and holds the pointers.
//
//  2. A nil *Registry is a fully working no-op: Registry methods on a nil
//     receiver return nil instruments, and every instrument method on a
//     nil receiver does nothing. Code can therefore be instrumented
//     unconditionally; callers that do not care about metrics pass nil
//     and pay one predictable branch per update.
//
// Metric names are flat strings by convention ("layer_quantity_unit",
// e.g. "gossip_rounds_total", "transport_rpc_latency_us"); there are no
// labels — variants get their own name, which keeps both the hot path and
// the export trivially simple.
package metrics

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer. The zero value is ready
// to use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be >= 0 for the value to stay monotone; this is not
// enforced).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous integer value. The zero value is ready to
// use; a nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets defined by inclusive
// upper bounds, plus an implicit +Inf overflow bucket. Units are the
// caller's choice and should be part of the metric name ("_us", "_ms").
// A nil *Histogram is a no-op.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; last = overflow
	sum    atomic.Int64
	n      atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of observed values (0 for nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Registry holds named instruments. Lookups take a lock and may allocate;
// resolve instruments once and keep the pointers. All methods are safe
// for concurrent use and safe on a nil receiver (returning nil
// instruments).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on first
// use. Returns nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. Returns nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds on first use (bounds must be sorted
// ascending; they are ignored if the histogram already exists). Returns
// nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{
			bounds: append([]int64(nil), bounds...),
			counts: make([]atomic.Int64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// HistogramSnapshot is the exported state of one histogram. Counts[i] is
// the number of observations <= Bounds[i]; the final extra entry is the
// +Inf overflow bucket.
type HistogramSnapshot struct {
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
}

// Snapshot is a point-in-time copy of a registry's instruments,
// marshalable to JSON. Maps iterate in sorted key order when marshaled by
// encoding/json, so output is deterministic.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the current values. A nil registry yields an empty
// (but usable) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Count:  h.n.Load(),
			Sum:    h.sum.Load(),
			Bounds: append([]int64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms[name] = hs
	}
	return s
}

// Get returns the snapshot's counter value for name (0 if absent).
func (s Snapshot) Get(name string) int64 { return s.Counters[name] }

// Delta returns s minus prev, instrument by instrument: the activity
// between two snapshots. Instruments absent from prev pass through
// unchanged.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     make(map[string]int64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for name, v := range s.Counters {
		out.Counters[name] = v - prev.Counters[name]
	}
	// Gauges are instantaneous: the delta keeps the current value.
	for name, v := range s.Gauges {
		out.Gauges[name] = v
	}
	for name, h := range s.Histograms {
		p, ok := prev.Histograms[name]
		if !ok || len(p.Counts) != len(h.Counts) {
			out.Histograms[name] = h
			continue
		}
		d := HistogramSnapshot{
			Count:  h.Count - p.Count,
			Sum:    h.Sum - p.Sum,
			Bounds: h.Bounds,
			Counts: make([]int64, len(h.Counts)),
		}
		for i := range h.Counts {
			d.Counts[i] = h.Counts[i] - p.Counts[i]
		}
		out.Histograms[name] = d
	}
	return out
}

// WriteJSON writes the registry's snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Names returns the sorted counter names in the snapshot (for summary
// tables).
func (s Snapshot) Names() []string {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
