package directory

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func rec(id PeerID, epoch, seq uint32) Record {
	return Record{ID: id, Ver: Version{Epoch: epoch, Seq: seq}}
}

func TestVersionOrdering(t *testing.T) {
	cases := []struct {
		a, b Version
		less bool
	}{
		{Version{1, 0}, Version{1, 1}, true},
		{Version{1, 5}, Version{2, 0}, true},
		{Version{2, 0}, Version{1, 9}, false},
		{Version{1, 1}, Version{1, 1}, false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.less {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.less)
		}
	}
	if !(Version{}).IsZero() || (Version{1, 0}).IsZero() {
		t.Error("IsZero broken")
	}
}

func TestUpsertNewAndStale(t *testing.T) {
	d := New(0, 10)
	if !d.Upsert(rec(3, 1, 0)) {
		t.Fatal("fresh record rejected")
	}
	if d.Upsert(rec(3, 1, 0)) {
		t.Fatal("same version accepted as news")
	}
	if d.Upsert(rec(3, 1, 0)) {
		t.Fatal("duplicate accepted")
	}
	if !d.Upsert(rec(3, 1, 1)) {
		t.Fatal("newer seq rejected")
	}
	if d.Upsert(rec(3, 1, 0)) {
		t.Fatal("stale record accepted")
	}
	if !d.Upsert(rec(3, 2, 0)) {
		t.Fatal("newer epoch rejected")
	}
	if d.NumKnown() != 1 {
		t.Fatalf("NumKnown = %d", d.NumKnown())
	}
}

func TestUpsertOutOfRange(t *testing.T) {
	d := New(0, 4)
	if d.Upsert(rec(99, 1, 0)) || d.Upsert(rec(-2, 1, 0)) {
		t.Fatal("out-of-range record accepted")
	}
}

func TestDigestTracksState(t *testing.T) {
	a := New(0, 16)
	b := New(1, 16)
	if a.Digest() != b.Digest() {
		t.Fatal("empty directories should agree")
	}
	a.Upsert(rec(2, 1, 0))
	if a.Digest() == b.Digest() {
		t.Fatal("digests should diverge after upsert")
	}
	b.Upsert(rec(2, 1, 0))
	if a.Digest() != b.Digest() {
		t.Fatal("same state, different digest")
	}
	// Order independence.
	a.Upsert(rec(3, 1, 0))
	a.Upsert(rec(4, 2, 7))
	b.Upsert(rec(4, 2, 7))
	b.Upsert(rec(3, 1, 0))
	if a.Digest() != b.Digest() {
		t.Fatal("digest should be order independent")
	}
	// Offline status must not affect digest.
	a.MarkOffline(3, time.Second)
	if a.Digest() != b.Digest() {
		t.Fatal("offline opinion changed digest")
	}
}

func TestOfflineOnlineAccounting(t *testing.T) {
	d := New(0, 8)
	d.Upsert(rec(1, 1, 0))
	d.Upsert(rec(2, 1, 0))
	if d.NumOnline() != 2 {
		t.Fatalf("NumOnline = %d, want 2", d.NumOnline())
	}
	d.MarkOffline(1, 10*time.Second)
	if d.NumOnline() != 1 {
		t.Fatalf("after MarkOffline NumOnline = %d", d.NumOnline())
	}
	d.MarkOffline(1, 20*time.Second) // idempotent
	if d.NumOnline() != 1 {
		t.Fatal("double MarkOffline changed count")
	}
	e, _ := d.Entry(1)
	if e.Online || e.OfflineSince != 10*time.Second {
		t.Fatalf("entry = %+v", e)
	}
	d.MarkOnline(1)
	if d.NumOnline() != 2 {
		t.Fatal("MarkOnline did not restore")
	}
	// A newer record also brings a peer back online.
	d.MarkOffline(2, 30*time.Second)
	d.Upsert(rec(2, 1, 1))
	e, _ = d.Entry(2)
	if !e.Online {
		t.Fatal("newer record should mark online")
	}
}

func TestDropDead(t *testing.T) {
	d := New(0, 8)
	d.Upsert(rec(1, 1, 0))
	d.Upsert(rec(2, 1, 0))
	d.MarkOffline(1, 0)
	dropped := d.DropDead(time.Hour, 30*time.Minute)
	if len(dropped) != 0 {
		t.Fatalf("dropped too early: %v", dropped)
	}
	dropped = d.DropDead(time.Hour, time.Hour)
	if len(dropped) != 1 || dropped[0] != 1 {
		t.Fatalf("dropped = %v, want [1]", dropped)
	}
	if _, ok := d.Get(1); ok {
		t.Fatal("dropped record still present")
	}
	if d.NumKnown() != 1 {
		t.Fatalf("NumKnown = %d", d.NumKnown())
	}
	// Digest must now equal a directory that never saw peer 1.
	fresh := New(0, 8)
	fresh.Upsert(rec(2, 1, 0))
	if fresh.Digest() != d.Digest() {
		t.Fatal("digest not restored after drop")
	}
}

func TestSummaryCachingAndMissing(t *testing.T) {
	d := New(0, 6)
	d.Upsert(rec(0, 1, 0))
	d.Upsert(rec(2, 3, 1))
	s1 := d.Summary()
	s2 := d.Summary()
	if &s1[0] != &s2[0] {
		t.Fatal("summary should be cached between mutations")
	}
	if !s1[1].IsZero() || s1[2] != (Version{3, 1}) {
		t.Fatalf("summary = %v", s1)
	}
	d.Upsert(rec(4, 1, 0))
	s3 := d.Summary()
	if s3[4].IsZero() {
		t.Fatal("cache not invalidated")
	}

	other := New(1, 6)
	other.Upsert(rec(2, 3, 0)) // older than d's
	need := other.Missing(d.Summary())
	// other needs: 0 (unknown), 2 (older), 4 (unknown)
	if len(need) != 3 {
		t.Fatalf("need = %v", need)
	}
	if need[1].ID != 2 || need[1].Have != (Version{3, 0}) {
		t.Fatalf("need[1] = %+v", need[1])
	}
	// d needs nothing from other.
	if n := d.Missing(other.Summary()); len(n) != 0 {
		t.Fatalf("d should need nothing, got %v", n)
	}
}

func TestMetaAddrPayload(t *testing.T) {
	d := New(0, 4)
	d.Upsert(Record{ID: 1, Ver: Version{1, 0}, Addr: "host:1", Payload: []byte{1, 2}})
	got, ok := d.Get(1)
	if !ok || got.Addr != "host:1" || len(got.Payload) != 2 {
		t.Fatalf("got %+v", got)
	}
	// Updating without addr keeps the old one.
	d.Upsert(Record{ID: 1, Ver: Version{1, 1}})
	got, _ = d.Get(1)
	if got.Addr != "host:1" {
		t.Fatal("addr lost on metadata-less update")
	}
}

func TestPickOnline(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := New(0, 100)
	for i := 0; i < 100; i++ {
		class := Fast
		if i%10 == 0 {
			class = Slow
		}
		d.Upsert(Record{ID: PeerID(i), Ver: Version{1, 0}, Class: class})
	}
	seen := map[PeerID]bool{}
	for i := 0; i < 2000; i++ {
		id, ok := d.PickOnline(rng, nil)
		if !ok {
			t.Fatal("no pick")
		}
		if id == 0 {
			t.Fatal("picked self")
		}
		seen[id] = true
	}
	if len(seen) < 90 {
		t.Fatalf("pick not spread: only %d distinct", len(seen))
	}
	// Class filter.
	for i := 0; i < 200; i++ {
		id, ok := d.PickOnline(rng, func(_ PeerID, e Entry) bool { return e.Class == Slow })
		if !ok {
			t.Fatal("no slow pick")
		}
		if id%10 != 0 {
			t.Fatalf("picked non-slow %d", id)
		}
	}
}

func TestPickOnlineExhaustedAndFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := New(0, 50)
	if _, ok := d.PickOnline(rng, nil); ok {
		t.Fatal("pick from empty directory succeeded")
	}
	d.Upsert(rec(0, 1, 0)) // only self
	if _, ok := d.PickOnline(rng, nil); ok {
		t.Fatal("self-only directory should fail to pick")
	}
	// One eligible peer among many offline: exercises the scan fallback.
	for i := 1; i < 50; i++ {
		d.Upsert(rec(PeerID(i), 1, 0))
		if i != 7 {
			d.MarkOffline(PeerID(i), 0)
		}
	}
	for i := 0; i < 20; i++ {
		id, ok := d.PickOnline(rng, nil)
		if !ok || id != 7 {
			t.Fatalf("pick = %d,%v want 7", id, ok)
		}
	}
}

func TestOnlineAndKnownIDs(t *testing.T) {
	d := New(0, 8)
	d.Upsert(rec(1, 1, 0))
	d.Upsert(rec(5, 1, 0))
	d.MarkOffline(5, 0)
	on := d.OnlineIDs()
	if len(on) != 1 || on[0] != 1 {
		t.Fatalf("OnlineIDs = %v", on)
	}
	known := d.KnownIDs()
	if len(known) != 2 {
		t.Fatalf("KnownIDs = %v", known)
	}
}

// Property: after any sequence of upserts, two directories that applied
// the same set (in any order) have equal digests and summaries.
func TestQuickDigestConvergence(t *testing.T) {
	f := func(ops []struct {
		ID    uint8
		Epoch uint8
		Seq   uint8
	}, seed int64) bool {
		a := New(0, 256)
		b := New(1, 256)
		for _, op := range ops {
			r := rec(PeerID(op.ID), uint32(op.Epoch)+1, uint32(op.Seq))
			a.Upsert(r)
		}
		// Apply to b in shuffled order.
		rng := rand.New(rand.NewSource(seed))
		shuffled := make([]int, len(ops))
		for i := range shuffled {
			shuffled[i] = i
		}
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		for _, i := range shuffled {
			op := ops[i]
			b.Upsert(rec(PeerID(op.ID), uint32(op.Epoch)+1, uint32(op.Seq)))
		}
		if a.Digest() != b.Digest() {
			return false
		}
		sa, sb := a.Summary(), b.Summary()
		for i := range sa {
			if sa[i] != sb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestTombstoneBlocksResurrection: after DropDead collects a record, the
// death certificate must reject re-learning any version up to the dropped
// one (otherwise anti-entropy with a peer that has not yet dropped it
// resurrects the dead record forever), while a genuine rejoin — a higher
// epoch — supersedes the certificate.
func TestTombstoneBlocksResurrection(t *testing.T) {
	d := New(0, 8)
	d.Upsert(rec(1, 2, 7))
	d.MarkOffline(1, 0)
	if dropped := d.DropDead(time.Hour, time.Hour); len(dropped) != 1 {
		t.Fatalf("dropped = %v, want [1]", dropped)
	}
	if d.Upsert(rec(1, 2, 7)) {
		t.Fatal("dropped version resurrected")
	}
	if d.Upsert(rec(1, 2, 3)) {
		t.Fatal("older-than-dropped version resurrected")
	}
	if d.NumKnown() != 0 || !d.VersionOf(1).IsZero() {
		t.Fatal("certificate did not keep the record out")
	}
	if !d.Upsert(rec(1, 3, 0)) {
		t.Fatal("genuine rejoin (higher epoch) rejected by certificate")
	}
	if d.VersionOf(1) != (Version{3, 0}) || d.NumKnown() != 1 {
		t.Fatalf("rejoin not applied: %v", d.VersionOf(1))
	}
	// The certificate is consumed by the rejoin: dropping the new
	// incarnation writes a fresh one at the new version.
	d.MarkOffline(1, 2*time.Hour)
	d.DropDead(time.Hour, 3*time.Hour)
	if d.Upsert(rec(1, 3, 0)) {
		t.Fatal("re-dropped version resurrected")
	}
}

// TestTombstoneSkipsMissing: anti-entropy must not keep pulling a record
// the local replica has certified dead — Missing skips summary entries at
// or below the certificate's version.
func TestTombstoneSkipsMissing(t *testing.T) {
	d := New(0, 8)
	d.Upsert(rec(1, 2, 7))
	d.MarkOffline(1, 0)
	d.DropDead(time.Hour, time.Hour)

	holder := New(2, 8)
	holder.Upsert(rec(2, 1, 0)) // holder's own record
	holder.Upsert(rec(1, 2, 7))
	if need := d.Missing(holder.Summary()); len(need) != 1 || need[0].ID != 2 {
		t.Fatalf("need = %v, want only the holder's own record", need)
	}
	// A rejoined incarnation in the summary is wanted again.
	holder.Upsert(rec(1, 3, 0))
	need := d.Missing(holder.Summary())
	found := false
	for _, nd := range need {
		if nd.ID == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("rejoined incarnation not pulled: need = %v", need)
	}
}
