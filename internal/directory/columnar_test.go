package directory

import (
	"reflect"
	"testing"
	"time"
	"unsafe"
)

// unsafeStringData exposes a string's backing pointer so the interning
// test can assert two equal strings share storage.
func unsafeStringData(s string) *byte { return unsafe.StringData(s) }

func colRec(id PeerID, epoch, seq uint32) Record {
	return Record{ID: id, Ver: Version{Epoch: epoch, Seq: seq}}
}

// TestSummaryRangeMatchesSummary: chunked summaries stitched together must
// equal the full vector, for every chunk size including non-divisors.
func TestSummaryRangeMatchesSummary(t *testing.T) {
	d := New(0, 37)
	for id := PeerID(0); id < 37; id += 3 {
		d.Upsert(rec(id, 1, uint32(id)))
	}
	full := d.Summary()
	for _, limit := range []int{1, 4, 7, 36, 37, 100} {
		var stitched []Version
		from := PeerID(0)
		knownTotal := 0
		for {
			chunk, next, known := d.SummaryRange(from, limit)
			stitched = append(stitched, chunk...)
			knownTotal += known
			if next == None {
				break
			}
			if next != from+PeerID(len(chunk)) {
				t.Fatalf("limit %d: next = %d, want %d", limit, next, from+PeerID(len(chunk)))
			}
			from = next
		}
		if !reflect.DeepEqual(stitched, full) {
			t.Fatalf("limit %d: stitched chunks differ from Summary()", limit)
		}
		if knownTotal != d.NumKnown() {
			t.Fatalf("limit %d: known total %d, want %d", limit, knownTotal, d.NumKnown())
		}
	}
	// Degenerate cursors.
	if chunk, next, known := d.SummaryRange(37, 10); chunk != nil || next != None || known != 0 {
		t.Fatalf("out-of-range cursor returned %v %v %v", chunk, next, known)
	}
	if chunk, next, _ := d.SummaryRange(0, 0); chunk != nil || next != None {
		t.Fatalf("zero limit returned %v %v", chunk, next)
	}
}

// TestMissingRangeMatchesMissing: chunked Missing over the same data must
// find exactly the ids full Missing finds.
func TestMissingRangeMatchesMissing(t *testing.T) {
	local := New(0, 20)
	remote := New(1, 20)
	for id := PeerID(0); id < 20; id++ {
		remote.Upsert(rec(id, 2, 5))
		if id%2 == 0 {
			local.Upsert(rec(id, 2, 3)) // stale
		}
		if id%5 == 0 {
			local.Upsert(rec(id, 2, 9)) // newer locally
		}
	}
	full := local.Missing(remote.Summary())
	var chunked []NeedEntry
	from := PeerID(0)
	for {
		chunk, next, _ := remote.SummaryRange(from, 6)
		chunked = append(chunked, local.MissingRange(chunk, from)...)
		if next == None {
			break
		}
		from = next
	}
	if !reflect.DeepEqual(full, chunked) {
		t.Fatalf("chunked missing %v != full missing %v", chunked, full)
	}
	if local.MissingRange(remote.Summary(), -1) != nil {
		t.Fatal("negative base must yield nothing")
	}
}

// TestSetOnEvict: supersede and drop both notify, outside the lock, with
// the affected ids.
func TestSetOnEvict(t *testing.T) {
	d := New(0, 8)
	var evicted []PeerID
	d.SetOnEvict(func(ids []PeerID) {
		// Re-entering the directory here must not deadlock: the callback
		// contract is "outside the lock".
		d.NumKnown()
		evicted = append(evicted, ids...)
	})

	d.Upsert(colRec(1, 1, 1))
	if len(evicted) != 0 {
		t.Fatalf("fresh insert evicted %v", evicted)
	}
	d.Upsert(colRec(1, 1, 1)) // duplicate: rejected, no eviction
	if len(evicted) != 0 {
		t.Fatalf("rejected upsert evicted %v", evicted)
	}
	d.Upsert(colRec(1, 1, 2)) // newer: supersedes
	if !reflect.DeepEqual(evicted, []PeerID{1}) {
		t.Fatalf("supersede evicted %v, want [1]", evicted)
	}

	evicted = nil
	d.Upsert(colRec(2, 1, 1))
	d.Upsert(colRec(3, 1, 1))
	d.MarkOffline(2, time.Minute)
	d.MarkOffline(3, time.Minute)
	d.DropDead(time.Hour, 2*time.Hour)
	if !reflect.DeepEqual(evicted, []PeerID{2, 3}) {
		t.Fatalf("drop evicted %v, want [2 3] (sorted)", evicted)
	}
}

// TestPayloadAccessor: the filtercache source path returns payload+version
// only when a payload exists.
func TestPayloadAccessor(t *testing.T) {
	d := New(0, 4)
	if _, _, ok := d.Payload(1); ok {
		t.Fatal("unknown peer has payload")
	}
	d.Upsert(colRec(1, 1, 1))
	if _, _, ok := d.Payload(1); ok {
		t.Fatal("payload-free record reports a payload")
	}
	d.Upsert(Record{ID: 1, Ver: Version{Epoch: 1, Seq: 2}, Payload: []byte{9, 9}})
	p, ver, ok := d.Payload(1)
	if !ok || len(p) != 2 || ver != (Version{Epoch: 1, Seq: 2}) {
		t.Fatalf("Payload = %v %v %v", p, ver, ok)
	}
	if _, _, ok := d.Payload(-1); ok {
		t.Fatal("out-of-range id has payload")
	}
}

// TestAddressInterning: repeated upserts with equal (but distinct) address
// strings collapse to one canonical instance.
func TestAddressInterning(t *testing.T) {
	d := New(0, 4)
	a1 := string([]byte("10.0.0.1:4000"))
	a2 := string([]byte("10.0.0.1:4000"))
	d.Upsert(Record{ID: 1, Ver: Version{Epoch: 1, Seq: 1}, Addr: a1})
	d.Upsert(Record{ID: 2, Ver: Version{Epoch: 1, Seq: 1}, Addr: a2})
	r1, _ := d.Get(1)
	r2, _ := d.Get(2)
	if r1.Addr != "10.0.0.1:4000" || r2.Addr != "10.0.0.1:4000" {
		t.Fatalf("addresses lost: %q %q", r1.Addr, r2.Addr)
	}
	// Same backing storage: interning worked.
	if unsafeStringData(r1.Addr) != unsafeStringData(r2.Addr) {
		t.Fatal("equal addresses not interned to one instance")
	}
}

// TestOfflineSinceSparse: the off-line stamp round-trips through the
// sparse map and clears on every path back on-line.
func TestOfflineSinceSparse(t *testing.T) {
	d := New(0, 4)
	d.Upsert(colRec(1, 1, 1))
	d.MarkOffline(1, 42*time.Second)
	e, _ := d.Entry(1)
	if e.Online || e.OfflineSince != 42*time.Second {
		t.Fatalf("entry = %+v", e)
	}
	d.MarkOnline(1)
	e, _ = d.Entry(1)
	if !e.Online || e.OfflineSince != 0 {
		t.Fatalf("entry after MarkOnline = %+v", e)
	}
	d.MarkOffline(1, 50*time.Second)
	d.Upsert(colRec(1, 1, 2)) // accepted record flips on-line too
	e, _ = d.Entry(1)
	if !e.Online || e.OfflineSince != 0 {
		t.Fatalf("entry after upsert = %+v", e)
	}
}
