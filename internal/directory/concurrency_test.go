package directory

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// The live transport mutates the directory from many goroutines while
// searches read it; this must be race-free and converge to consistent
// counters (run under -race in CI).
func TestConcurrentUpsertAndReads(t *testing.T) {
	d := New(0, 256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 500; i++ {
				id := PeerID(rng.Intn(256))
				switch rng.Intn(5) {
				case 0:
					d.Upsert(Record{ID: id, Ver: Version{Epoch: 1, Seq: uint32(rng.Intn(10))}})
				case 1:
					d.MarkOffline(id, time.Duration(i)*time.Millisecond)
				case 2:
					d.MarkOnline(id)
				case 3:
					d.Get(id)
					d.VersionOf(id)
					d.Digest()
				case 4:
					d.Summary()
					d.PickOnline(rng, nil)
					d.Missing(d.Summary())
				}
			}
		}(g)
	}
	wg.Wait()

	// Counter invariants hold after the storm.
	known, online := 0, 0
	for id := 0; id < 256; id++ {
		if e, ok := d.Entry(PeerID(id)); ok {
			known++
			if e.Online {
				online++
			}
		}
	}
	if known != d.NumKnown() {
		t.Fatalf("NumKnown %d != scan %d", d.NumKnown(), known)
	}
	if online != d.NumOnline() {
		t.Fatalf("NumOnline %d != scan %d", d.NumOnline(), online)
	}
	// Digest still matches a rebuilt one.
	fresh := New(1, 256)
	for id := 0; id < 256; id++ {
		if e, ok := d.Entry(PeerID(id)); ok {
			fresh.Upsert(Record{ID: PeerID(id), Ver: e.Ver})
		}
	}
	if fresh.Digest() != d.Digest() {
		t.Fatal("digest drifted from contents")
	}
}
