package directory

import (
	"testing"
	"time"
)

// TestGeneration: the mutation generation advances exactly on observable
// changes — accepted records, on/off-line flips, drops — and stays put on
// rejected or idempotent operations, so IPF caches keyed on it neither go
// stale nor churn needlessly.
func TestGeneration(t *testing.T) {
	d := New(0, 8)
	g := d.Generation()

	if !d.Upsert(rec(1, 1, 0)) {
		t.Fatal("fresh record rejected")
	}
	if d.Generation() <= g {
		t.Fatal("accepted upsert did not advance generation")
	}
	g = d.Generation()

	d.Upsert(rec(1, 1, 0)) // duplicate: rejected
	d.Upsert(rec(99, 1, 0))
	if d.Generation() != g {
		t.Fatal("rejected upsert advanced generation")
	}

	d.MarkOffline(1, 5*time.Second)
	if d.Generation() <= g {
		t.Fatal("offline flip did not advance generation")
	}
	g = d.Generation()
	d.MarkOffline(1, 10*time.Second) // already offline
	if d.Generation() != g {
		t.Fatal("idempotent MarkOffline advanced generation")
	}

	d.MarkOnline(1)
	if d.Generation() <= g {
		t.Fatal("online flip did not advance generation")
	}
	g = d.Generation()
	d.MarkOnline(1)
	if d.Generation() != g {
		t.Fatal("idempotent MarkOnline advanced generation")
	}

	d.Upsert(rec(2, 1, 0))
	d.MarkOffline(2, time.Second)
	g = d.Generation()
	if dropped := d.DropDead(time.Second, time.Hour); len(dropped) != 1 {
		t.Fatalf("dropped = %v", dropped)
	}
	if d.Generation() <= g {
		t.Fatal("drop did not advance generation")
	}
	g = d.Generation()
	if dropped := d.DropDead(time.Second, time.Hour); len(dropped) != 0 {
		t.Fatalf("second drop = %v", dropped)
	}
	if d.Generation() != g {
		t.Fatal("no-op DropDead advanced generation")
	}
}
