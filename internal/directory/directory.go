// Package directory implements PlanetP's replicated global directory
// (Section 3): every peer maintains a local copy of the membership list —
// peer ids, addresses, on/off-line status, and a versioned Bloom-filter
// summary per peer — kept loosely consistent by the gossiping layer.
//
// Peer ids are small dense integers so that a simulated community of
// several thousand peers (each holding a directory over all the others)
// fits comfortably in memory. The per-peer hot state is stored in
// columns (versions, flag bytes, wire sizes) rather than a struct-per-peer
// table: the columns carry no padding, the rarely populated off-line
// timestamp lives in a sparse side map, and live-mode cold state
// (addresses, compressed Bloom filters) lives in a lazily allocated side
// table with interned address strings. At 100k peers the hot table costs
// ~17 bytes/peer instead of the 32 a padded struct row would take.
//
// Off-line status is a local opinion — the paper explicitly does not
// gossip leaves; a peer marks another off-line when a send to it fails and
// flips it back when any newer record arrives. Consequently the directory
// digest and summaries cover only (id, version), never status.
package directory

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// PeerID identifies a community member. IDs are dense small integers
// assigned at community-formation (simulation) or registration (live)
// time.
type PeerID int32

// None is the invalid PeerID.
const None PeerID = -1

// Version orders the states of one peer's record. Epoch increments on
// every rejoin (a new incarnation); Seq increments whenever the peer's
// Bloom filter changes within an incarnation. Epoch 0 means "unknown":
// live peers start at Epoch 1.
type Version struct {
	Epoch uint32
	Seq   uint32
}

// Less reports whether v orders strictly before o.
func (v Version) Less(o Version) bool {
	if v.Epoch != o.Epoch {
		return v.Epoch < o.Epoch
	}
	return v.Seq < o.Seq
}

// IsZero reports whether v is the unknown version.
func (v Version) IsZero() bool { return v.Epoch == 0 && v.Seq == 0 }

// String implements fmt.Stringer.
func (v Version) String() string { return fmt.Sprintf("%d.%d", v.Epoch, v.Seq) }

// Class is a peer's connectivity class, used by the bandwidth-aware
// gossiping variant (Section 7.2): Fast is 512 Kb/s or better, Slow is
// modem-speed.
type Class uint8

// Connectivity classes.
const (
	Fast Class = iota
	Slow
)

// Record is the gossiped state of one peer: everything in the directory
// except the local-only on/off-line opinion.
type Record struct {
	ID    PeerID
	Ver   Version
	Class Class
	// Addr is the peer's contact address (live mode; empty in
	// simulation).
	Addr string
	// PayloadSize is the wire size in bytes of the peer's full
	// compressed Bloom filter. In live mode it equals len(Payload).
	PayloadSize int32
	// DiffSize is the wire size of the most recent Bloom-filter diff
	// (the rumor payload); the simulator charges this for rumor pushes.
	DiffSize int32
	// Payload is the full compressed Bloom filter (live mode only).
	Payload []byte
}

// Entry is the directory's per-peer hot state, composed on read from the
// internal columns (the directory no longer stores Entry rows).
type Entry struct {
	Ver          Version
	Known        bool
	Online       bool
	Class        Class
	PayloadSize  int32
	DiffSize     int32
	OfflineSince time.Duration
}

// Per-peer flag bits (one byte per peer in the flags column).
const (
	flagKnown uint8 = 1 << iota
	flagOnline
	flagSlow
)

// meta holds live-mode cold state.
type meta struct {
	addr    string
	payload []byte
}

// tombstone is a death certificate (Demers et al.): the version at which a
// record was garbage-collected by DropDead. Without it a dropped record
// resurrects forever — the dropper's next anti-entropy exchange with any
// peer that has not yet dropped it pulls the dead record back (marked
// on-line, with a fresh off-line clock), so the community never globally
// forgets a departed member. The certificate rejects re-learning any
// version up to the dropped one; a genuine rejoin carries a higher epoch
// and supersedes it.
type tombstone struct {
	ver Version
}

// Directory is one peer's replica of the global directory. It is
// thread-safe: the live transport receives messages concurrently.
type Directory struct {
	mu   sync.RWMutex
	self PeerID

	// Columnar per-peer hot state, indexed by PeerID. Parallel columns
	// instead of an []Entry row table: no padding, and the cold
	// OfflineSince stamp (populated only while a peer is believed
	// off-line) lives in the sparse offSince map.
	vers     []Version
	flags    []uint8
	paySize  []int32
	diffSize []int32
	offSince map[PeerID]time.Duration

	meta   map[PeerID]*meta
	intern map[string]string // address string interning
	tombs  map[PeerID]tombstone

	digest  uint64
	nKnown  int
	nOnline int

	// gen counts observable mutations (accepted upserts, on/off-line
	// flips, drops). Unlike digest it also covers the local on/off-line
	// opinion, which changes search candidate sets; the query engine's
	// IPF/rank caches key on it. Atomic so readers skip the lock.
	gen atomic.Uint64

	// cached summary, shared immutably; nil when stale.
	summaryCache []Version

	// onEvict, when set, is called (outside the lock) with the ids whose
	// records were superseded or dropped, so downstream caches holding
	// decoded state for the old version can release it.
	onEvict func(ids []PeerID)
}

// New returns a directory for peer self in a community whose id space is
// [0, capacity). The directory starts empty except for awareness of the id
// space size; callers insert records (including self's) via Upsert.
func New(self PeerID, capacity int) *Directory {
	return &Directory{
		self:     self,
		vers:     make([]Version, capacity),
		flags:    make([]uint8, capacity),
		paySize:  make([]int32, capacity),
		diffSize: make([]int32, capacity),
		offSince: make(map[PeerID]time.Duration),
		meta:     make(map[PeerID]*meta),
		intern:   make(map[string]string),
		tombs:    make(map[PeerID]tombstone),
	}
}

// Self returns the owning peer's id.
func (d *Directory) Self() PeerID { return d.self }

// Capacity returns the size of the id space.
func (d *Directory) Capacity() int { return len(d.vers) }

// SetOnEvict registers a callback invoked — outside the directory lock,
// after the mutation commits — with the ids whose records were superseded
// by a newer version or garbage-collected by DropDead. Filter caches hook
// this to release decoded state promptly instead of leaking it until the
// next probe happens to notice the version change.
func (d *Directory) SetOnEvict(fn func(ids []PeerID)) {
	d.mu.Lock()
	d.onEvict = fn
	d.mu.Unlock()
}

// inRange reports whether id indexes the columns.
func (d *Directory) inRange(id PeerID) bool {
	return int(id) >= 0 && int(id) < len(d.vers)
}

// knownLocked reports whether id holds a record.
func (d *Directory) knownLocked(id PeerID) bool {
	return d.inRange(id) && d.flags[id]&flagKnown != 0
}

// entryLocked composes the public Entry view from the columns.
func (d *Directory) entryLocked(id PeerID) Entry {
	fl := d.flags[id]
	e := Entry{
		Ver:         d.vers[id],
		Known:       fl&flagKnown != 0,
		Online:      fl&flagOnline != 0,
		PayloadSize: d.paySize[id],
		DiffSize:    d.diffSize[id],
	}
	if fl&flagSlow != 0 {
		e.Class = Slow
	}
	if fl&flagKnown != 0 && fl&flagOnline == 0 {
		e.OfflineSince = d.offSince[id]
	}
	return e
}

// internLocked returns a canonical instance of addr. Gossip re-delivers
// the same contact address many times (every record transfer decodes a
// fresh string); interning keeps one copy per distinct address.
func (d *Directory) internLocked(addr string) string {
	if s, ok := d.intern[addr]; ok {
		return s
	}
	d.intern[addr] = addr
	return addr
}

// recHash mixes an (id, version) pair for the incremental digest.
func recHash(id PeerID, v Version) uint64 {
	x := uint64(id)<<40 ^ uint64(v.Epoch)<<20 ^ uint64(v.Seq)
	// SplitMix64 finalizer: good avalanche for the XOR accumulator.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Upsert merges rec into the directory. It returns true when rec is newer
// than the stored version (the caller should then treat it as news worth
// rumoring). Any accepted record marks the peer on-line: hearing about a
// peer implies it recently announced something.
func (d *Directory) Upsert(rec Record) bool {
	d.mu.Lock()
	accepted, superseded := d.upsertLocked(rec)
	cb := d.onEvict
	d.mu.Unlock()
	if superseded && cb != nil {
		cb([]PeerID{rec.ID})
	}
	return accepted
}

// upsertLocked does the Upsert work; the second result reports whether an
// existing record was replaced by a newer version (eviction-hook food).
func (d *Directory) upsertLocked(rec Record) (accepted, superseded bool) {
	if !d.inRange(rec.ID) {
		return false, false
	}
	if tomb, ok := d.tombs[rec.ID]; ok {
		if !tomb.ver.Less(rec.Ver) {
			// Death certificate: this incarnation (or older) was already
			// garbage-collected here; do not resurrect it.
			return false, false
		}
		// A strictly newer version is a genuine rejoin; the certificate
		// has served its purpose.
		delete(d.tombs, rec.ID)
	}
	id := rec.ID
	known := d.flags[id]&flagKnown != 0
	if known && !d.vers[id].Less(rec.Ver) {
		return false, false
	}
	if known {
		d.digest ^= recHash(id, d.vers[id])
		superseded = true
	} else {
		d.nKnown++
	}
	d.digest ^= recHash(id, rec.Ver)
	if d.flags[id]&flagOnline == 0 {
		d.nOnline++
	}
	d.vers[id] = rec.Ver
	fl := flagKnown | flagOnline
	if rec.Class == Slow {
		fl |= flagSlow
	}
	d.flags[id] = fl
	d.paySize[id] = rec.PayloadSize
	d.diffSize[id] = rec.DiffSize
	delete(d.offSince, id)
	if rec.Addr != "" || rec.Payload != nil {
		m := d.meta[id]
		if m == nil {
			m = &meta{}
			d.meta[id] = m
		}
		if rec.Addr != "" {
			m.addr = d.internLocked(rec.Addr)
		}
		if rec.Payload != nil {
			m.payload = rec.Payload
		}
	}
	d.summaryCache = nil
	d.gen.Add(1)
	return true, superseded
}

// Get returns the full record for id and whether it is known.
func (d *Directory) Get(id PeerID) (Record, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.getLocked(id)
}

func (d *Directory) getLocked(id PeerID) (Record, bool) {
	if !d.knownLocked(id) {
		return Record{}, false
	}
	e := d.entryLocked(id)
	rec := Record{
		ID: id, Ver: e.Ver, Class: e.Class,
		PayloadSize: e.PayloadSize, DiffSize: e.DiffSize,
	}
	if m := d.meta[id]; m != nil {
		rec.Addr = m.addr
		rec.Payload = m.payload
	}
	return rec, true
}

// Payload returns the compressed Bloom-filter payload and version for id.
// ok is false when the peer is unknown or carries no payload. This is the
// filtercache.Source access path: unlike Get it does not compose a Record.
func (d *Directory) Payload(id PeerID) ([]byte, Version, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if !d.knownLocked(id) {
		return nil, Version{}, false
	}
	m := d.meta[id]
	if m == nil || m.payload == nil {
		return nil, d.vers[id], false
	}
	return m.payload, d.vers[id], true
}

// Entry returns the hot state for id.
func (d *Directory) Entry(id PeerID) (Entry, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if !d.knownLocked(id) {
		return Entry{}, false
	}
	return d.entryLocked(id), true
}

// VersionOf returns the known version of id (zero Version if unknown).
func (d *Directory) VersionOf(id PeerID) Version {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if !d.inRange(id) {
		return Version{}
	}
	return d.vers[id]
}

// MarkOffline records the local opinion that id is off-line as of now.
// Per the paper this is never gossiped and does not affect the digest.
func (d *Directory) MarkOffline(id PeerID, now time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.knownLocked(id) || d.flags[id]&flagOnline == 0 {
		return
	}
	d.flags[id] &^= flagOnline
	d.offSince[id] = now
	d.nOnline--
	d.gen.Add(1)
}

// MarkOnline flips the local opinion back (used when a peer hears directly
// from id, e.g. receives any message from it).
func (d *Directory) MarkOnline(id PeerID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.knownLocked(id) || d.flags[id]&flagOnline != 0 {
		return
	}
	d.flags[id] |= flagOnline
	delete(d.offSince, id)
	d.nOnline++
	d.gen.Add(1)
}

// DropDead removes every record that has been continuously off-line for at
// least tDead (Section 3: assumed to have left permanently). It returns
// the ids dropped. Each drop leaves a death certificate so anti-entropy
// with a peer that has not yet dropped the record cannot resurrect it.
// Certificates are kept until a genuine rejoin (higher epoch) supersedes
// them: purging them on any clock re-opens the resurrection cycle,
// because replicas drop the same record at widely spread times (failure
// detection is randomized and every off-line clock starts when that
// replica's own sends first fail) and one expired certificate next to one
// laggard holder re-seeds the dead record community-wide. The certificate
// map needs no purge to stay bounded — ids are confined to [0, capacity),
// so it never outgrows the entry table it shadows.
func (d *Directory) DropDead(tDead time.Duration, now time.Duration) []PeerID {
	d.mu.Lock()
	var dropped []PeerID
	for id, since := range d.offSince {
		if d.flags[id]&flagKnown == 0 || now-since < tDead {
			continue
		}
		d.digest ^= recHash(id, d.vers[id])
		d.tombs[id] = tombstone{ver: d.vers[id]}
		d.vers[id] = Version{}
		d.flags[id] = 0
		d.paySize[id] = 0
		d.diffSize[id] = 0
		delete(d.offSince, id)
		delete(d.meta, id)
		d.nKnown--
		dropped = append(dropped, id)
	}
	if dropped != nil {
		// The off-line map iterates in arbitrary order; sort so drop
		// notifications (and everything downstream, e.g. the simulator's
		// OnDrop hooks) stay deterministic.
		sort.Slice(dropped, func(i, j int) bool { return dropped[i] < dropped[j] })
		d.summaryCache = nil
		d.gen.Add(1)
	}
	cb := d.onEvict
	d.mu.Unlock()
	if dropped != nil && cb != nil {
		cb(dropped)
	}
	return dropped
}

// Generation returns a counter that advances on every observable mutation
// (accepted upsert, on/off-line flip, drop). Two equal generations imply
// an unchanged directory; search layers use it to invalidate caches keyed
// on directory state. Reads take no lock.
func (d *Directory) Generation() uint64 { return d.gen.Load() }

// Digest returns a 64-bit fingerprint of the (id, version) state. Two
// directories with equal digests hold the same versions with overwhelming
// probability; the gossip layer uses this to skip summary exchanges
// between converged peers (a pure execution optimization — wire accounting
// still charges the full summary).
func (d *Directory) Digest() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.digest
}

// NumKnown returns the number of known records.
func (d *Directory) NumKnown() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.nKnown
}

// NumOnline returns the number of records currently believed on-line.
func (d *Directory) NumOnline() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.nOnline
}

// Summary returns the dense version vector (index = PeerID; zero Version =
// unknown). The returned slice is shared and immutable: callers must not
// modify it. Successive calls between mutations return the same slice, so
// converged anti-entropy costs no allocation.
func (d *Directory) Summary() []Version {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.summaryCache == nil {
		s := make([]Version, len(d.vers))
		for id := range d.vers {
			if d.flags[id]&flagKnown != 0 {
				s[id] = d.vers[id]
			}
		}
		d.summaryCache = s
	}
	return d.summaryCache
}

// SummaryRange returns the version-vector chunk covering ids
// [from, from+limit): chunk[i] is the version of peer from+i (zero =
// unknown). next is the cursor for the following chunk, or None when this
// chunk reaches the end of the id space. known counts the non-zero
// versions in the chunk (wire accounting charges per known record). The
// chunk is freshly allocated and bounded by limit — this is the streaming
// anti-entropy path, which never materializes the full vector.
func (d *Directory) SummaryRange(from PeerID, limit int) (chunk []Version, next PeerID, known int) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n := len(d.vers)
	if from < 0 {
		from = 0
	}
	if int(from) >= n || limit <= 0 {
		return nil, None, 0
	}
	end := int(from) + limit
	if end > n {
		end = n
	}
	chunk = make([]Version, end-int(from))
	for i := range chunk {
		id := int(from) + i
		if d.flags[id]&flagKnown != 0 {
			chunk[i] = d.vers[id]
			known++
		}
	}
	if end == n {
		return chunk, None, known
	}
	return chunk, PeerID(end), known
}

// Missing compares the local state against a remote summary and returns
// the ids (paired with the local version, for diff-aware pulls) for which
// the remote side has strictly newer information.
type NeedEntry struct {
	ID   PeerID
	Have Version // zero if entirely unknown locally
}

// Missing returns what to pull from a peer whose summary is remote.
func (d *Directory) Missing(remote []Version) []NeedEntry {
	return d.MissingRange(remote, 0)
}

// MissingRange is Missing for a summary chunk whose index 0 corresponds
// to peer id base (streaming anti-entropy compares one bounded chunk at a
// time).
func (d *Directory) MissingRange(remote []Version, base PeerID) []NeedEntry {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if base < 0 {
		return nil
	}
	var need []NeedEntry
	n := len(remote)
	if max := len(d.vers) - int(base); n > max {
		n = max
	}
	for i := 0; i < n; i++ {
		rv := remote[i]
		if rv.IsZero() {
			continue
		}
		id := base + PeerID(i)
		if d.flags[id]&flagKnown == 0 || d.vers[id].Less(rv) {
			// A certified-dead version is not worth pulling: Upsert would
			// reject it anyway. Skipping it here saves the wasted record
			// transfer on every exchange until the remote drops it too.
			if tomb, ok := d.tombs[id]; ok && !tomb.ver.Less(rv) {
				continue
			}
			need = append(need, NeedEntry{ID: id, Have: d.vers[id]})
		}
	}
	return need
}

// PickFilter restricts PickOnline's choice.
type PickFilter func(id PeerID, e Entry) bool

// PickOnline returns a uniformly random known-on-line peer other than self
// satisfying filter (nil filter accepts all). It returns (None, false)
// when no candidate exists. The implementation probes random ids first —
// O(1) when most peers are on-line — and falls back to a linear scan.
func (d *Directory) PickOnline(rng *rand.Rand, filter PickFilter) (PeerID, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n := len(d.vers)
	if n == 0 || d.nOnline == 0 {
		return None, false
	}
	ok := func(id PeerID) bool {
		if d.flags[id]&(flagKnown|flagOnline) != flagKnown|flagOnline || id == d.self {
			return false
		}
		return filter == nil || filter(id, d.entryLocked(id))
	}
	for attempt := 0; attempt < 64; attempt++ {
		id := PeerID(rng.Intn(n))
		if ok(id) {
			return id, true
		}
	}
	// Rare fallback: reservoir-sample the eligible set.
	var chosen PeerID = None
	count := 0
	for id := 0; id < n; id++ {
		if ok(PeerID(id)) {
			count++
			if rng.Intn(count) == 0 {
				chosen = PeerID(id)
			}
		}
	}
	return chosen, chosen != None
}

// PickOffline returns a uniformly random known-off-line peer other than
// self, or (None, false) when every known peer is on-line. The gossip
// layer uses it to probe suspected-dead peers for recovery — the path by
// which a healed partition or a transiently unreachable peer is
// rediscovered. Linear reservoir scan in id order — NOT over the sparse
// off-line map, whose iteration order would consume the shared RNG
// nondeterministically and break simulator reproducibility.
func (d *Directory) PickOffline(rng *rand.Rand) (PeerID, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var chosen PeerID = None
	count := 0
	for id := range d.flags {
		if d.flags[id]&flagKnown != 0 && d.flags[id]&flagOnline == 0 && PeerID(id) != d.self {
			count++
			if rng.Intn(count) == 0 {
				chosen = PeerID(id)
			}
		}
	}
	return chosen, chosen != None
}

// OnlineIDs returns the ids currently believed on-line (excluding none —
// self is included if its record is present and on-line).
func (d *Directory) OnlineIDs() []PeerID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]PeerID, 0, d.nOnline)
	for id := range d.flags {
		if d.flags[id]&(flagKnown|flagOnline) == flagKnown|flagOnline {
			out = append(out, PeerID(id))
		}
	}
	return out
}

// SampleOnline returns a uniformly random sample of at most max
// known-on-line records other than self, for peer-exchange replies
// (bootstrap discovery). Each record carries the peer's address, class,
// and wire sizes but not its Bloom-filter payload: discovery needs
// contacts, not content — a requester pulls filters through normal
// anti-entropy once it knows who exists. Reservoir sampling keeps the
// pass linear with a max-bounded allocation.
func (d *Directory) SampleOnline(rng *rand.Rand, max int) []Record {
	if max <= 0 {
		return nil
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	var out []Record
	count := 0
	for id := range d.flags {
		if d.flags[id]&(flagKnown|flagOnline) != flagKnown|flagOnline || PeerID(id) == d.self {
			continue
		}
		count++
		if len(out) < max {
			out = append(out, d.sampleRecordLocked(PeerID(id)))
		} else if j := rng.Intn(count); j < max {
			out[j] = d.sampleRecordLocked(PeerID(id))
		}
	}
	return out
}

// sampleRecordLocked builds a payload-free record for SampleOnline.
func (d *Directory) sampleRecordLocked(id PeerID) Record {
	e := d.entryLocked(id)
	rec := Record{
		ID: id, Ver: e.Ver, Class: e.Class,
		PayloadSize: e.PayloadSize, DiffSize: e.DiffSize,
	}
	if m := d.meta[id]; m != nil {
		rec.Addr = m.addr
	}
	return rec
}

// KnownIDs returns all known ids.
func (d *Directory) KnownIDs() []PeerID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]PeerID, 0, d.nKnown)
	for id := range d.flags {
		if d.flags[id]&flagKnown != 0 {
			out = append(out, PeerID(id))
		}
	}
	return out
}
