// Package directory implements PlanetP's replicated global directory
// (Section 3): every peer maintains a local copy of the membership list —
// peer ids, addresses, on/off-line status, and a versioned Bloom-filter
// summary per peer — kept loosely consistent by the gossiping layer.
//
// Peer ids are small dense integers so that a simulated community of
// several thousand peers (each holding a directory over all the others)
// fits comfortably in memory: the per-peer hot state is a fixed-size Entry
// in a flat slice, while live-mode cold state (addresses, compressed Bloom
// filters) lives in a lazily allocated side table.
//
// Off-line status is a local opinion — the paper explicitly does not
// gossip leaves; a peer marks another off-line when a send to it fails and
// flips it back when any newer record arrives. Consequently the directory
// digest and summaries cover only (id, version), never status.
package directory

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// PeerID identifies a community member. IDs are dense small integers
// assigned at community-formation (simulation) or registration (live)
// time.
type PeerID int32

// None is the invalid PeerID.
const None PeerID = -1

// Version orders the states of one peer's record. Epoch increments on
// every rejoin (a new incarnation); Seq increments whenever the peer's
// Bloom filter changes within an incarnation. Epoch 0 means "unknown":
// live peers start at Epoch 1.
type Version struct {
	Epoch uint32
	Seq   uint32
}

// Less reports whether v orders strictly before o.
func (v Version) Less(o Version) bool {
	if v.Epoch != o.Epoch {
		return v.Epoch < o.Epoch
	}
	return v.Seq < o.Seq
}

// IsZero reports whether v is the unknown version.
func (v Version) IsZero() bool { return v.Epoch == 0 && v.Seq == 0 }

// String implements fmt.Stringer.
func (v Version) String() string { return fmt.Sprintf("%d.%d", v.Epoch, v.Seq) }

// Class is a peer's connectivity class, used by the bandwidth-aware
// gossiping variant (Section 7.2): Fast is 512 Kb/s or better, Slow is
// modem-speed.
type Class uint8

// Connectivity classes.
const (
	Fast Class = iota
	Slow
)

// Record is the gossiped state of one peer: everything in the directory
// except the local-only on/off-line opinion.
type Record struct {
	ID    PeerID
	Ver   Version
	Class Class
	// Addr is the peer's contact address (live mode; empty in
	// simulation).
	Addr string
	// PayloadSize is the wire size in bytes of the peer's full
	// compressed Bloom filter. In live mode it equals len(Payload).
	PayloadSize int32
	// DiffSize is the wire size of the most recent Bloom-filter diff
	// (the rumor payload); the simulator charges this for rumor pushes.
	DiffSize int32
	// Payload is the full compressed Bloom filter (live mode only).
	Payload []byte
}

// Entry is the directory's per-peer hot state. Fixed-size so the whole
// table is one flat allocation.
type Entry struct {
	Ver          Version
	Known        bool
	Online       bool
	Class        Class
	PayloadSize  int32
	DiffSize     int32
	OfflineSince time.Duration
}

// meta holds live-mode cold state.
type meta struct {
	addr    string
	payload []byte
}

// tombstone is a death certificate (Demers et al.): the version at which a
// record was garbage-collected by DropDead. Without it a dropped record
// resurrects forever — the dropper's next anti-entropy exchange with any
// peer that has not yet dropped it pulls the dead record back (marked
// on-line, with a fresh off-line clock), so the community never globally
// forgets a departed member. The certificate rejects re-learning any
// version up to the dropped one; a genuine rejoin carries a higher epoch
// and supersedes it.
type tombstone struct {
	ver Version
}

// Directory is one peer's replica of the global directory. It is
// thread-safe: the live transport receives messages concurrently.
type Directory struct {
	mu      sync.RWMutex
	self    PeerID
	entries []Entry
	meta    map[PeerID]*meta
	tombs   map[PeerID]tombstone
	digest  uint64
	nKnown  int
	nOnline int

	// gen counts observable mutations (accepted upserts, on/off-line
	// flips, drops). Unlike digest it also covers the local on/off-line
	// opinion, which changes search candidate sets; the query engine's
	// IPF/rank caches key on it. Atomic so readers skip the lock.
	gen atomic.Uint64

	// cached summary, shared immutably; nil when stale.
	summaryCache []Version
}

// New returns a directory for peer self in a community whose id space is
// [0, capacity). The directory starts empty except for awareness of the id
// space size; callers insert records (including self's) via Upsert.
func New(self PeerID, capacity int) *Directory {
	return &Directory{
		self:    self,
		entries: make([]Entry, capacity),
		meta:    make(map[PeerID]*meta),
		tombs:   make(map[PeerID]tombstone),
	}
}

// Self returns the owning peer's id.
func (d *Directory) Self() PeerID { return d.self }

// Capacity returns the size of the id space.
func (d *Directory) Capacity() int { return len(d.entries) }

// recHash mixes an (id, version) pair for the incremental digest.
func recHash(id PeerID, v Version) uint64 {
	x := uint64(id)<<40 ^ uint64(v.Epoch)<<20 ^ uint64(v.Seq)
	// SplitMix64 finalizer: good avalanche for the XOR accumulator.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Upsert merges rec into the directory. It returns true when rec is newer
// than the stored version (the caller should then treat it as news worth
// rumoring). Any accepted record marks the peer on-line: hearing about a
// peer implies it recently announced something.
func (d *Directory) Upsert(rec Record) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(rec.ID) < 0 || int(rec.ID) >= len(d.entries) {
		return false
	}
	if tomb, ok := d.tombs[rec.ID]; ok {
		if !tomb.ver.Less(rec.Ver) {
			// Death certificate: this incarnation (or older) was already
			// garbage-collected here; do not resurrect it.
			return false
		}
		// A strictly newer version is a genuine rejoin; the certificate
		// has served its purpose.
		delete(d.tombs, rec.ID)
	}
	e := &d.entries[rec.ID]
	if e.Known && !e.Ver.Less(rec.Ver) {
		return false
	}
	if e.Known {
		d.digest ^= recHash(rec.ID, e.Ver)
	} else {
		d.nKnown++
	}
	d.digest ^= recHash(rec.ID, rec.Ver)
	if !e.Online {
		d.nOnline++
	}
	e.Ver = rec.Ver
	e.Known = true
	e.Online = true
	e.Class = rec.Class
	e.PayloadSize = rec.PayloadSize
	e.DiffSize = rec.DiffSize
	e.OfflineSince = 0
	if rec.Addr != "" || rec.Payload != nil {
		m := d.meta[rec.ID]
		if m == nil {
			m = &meta{}
			d.meta[rec.ID] = m
		}
		if rec.Addr != "" {
			m.addr = rec.Addr
		}
		if rec.Payload != nil {
			m.payload = rec.Payload
		}
	}
	d.summaryCache = nil
	d.gen.Add(1)
	return true
}

// Get returns the full record for id and whether it is known.
func (d *Directory) Get(id PeerID) (Record, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.getLocked(id)
}

func (d *Directory) getLocked(id PeerID) (Record, bool) {
	if int(id) < 0 || int(id) >= len(d.entries) || !d.entries[id].Known {
		return Record{}, false
	}
	e := d.entries[id]
	rec := Record{
		ID: id, Ver: e.Ver, Class: e.Class,
		PayloadSize: e.PayloadSize, DiffSize: e.DiffSize,
	}
	if m := d.meta[id]; m != nil {
		rec.Addr = m.addr
		rec.Payload = m.payload
	}
	return rec, true
}

// Entry returns the hot state for id.
func (d *Directory) Entry(id PeerID) (Entry, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(id) < 0 || int(id) >= len(d.entries) || !d.entries[id].Known {
		return Entry{}, false
	}
	return d.entries[id], true
}

// VersionOf returns the known version of id (zero Version if unknown).
func (d *Directory) VersionOf(id PeerID) Version {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(id) < 0 || int(id) >= len(d.entries) {
		return Version{}
	}
	return d.entries[id].Ver
}

// MarkOffline records the local opinion that id is off-line as of now.
// Per the paper this is never gossiped and does not affect the digest.
func (d *Directory) MarkOffline(id PeerID, now time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(id) < 0 || int(id) >= len(d.entries) {
		return
	}
	e := &d.entries[id]
	if !e.Known || !e.Online {
		return
	}
	e.Online = false
	e.OfflineSince = now
	d.nOnline--
	d.gen.Add(1)
}

// MarkOnline flips the local opinion back (used when a peer hears directly
// from id, e.g. receives any message from it).
func (d *Directory) MarkOnline(id PeerID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(id) < 0 || int(id) >= len(d.entries) {
		return
	}
	e := &d.entries[id]
	if !e.Known || e.Online {
		return
	}
	e.Online = true
	e.OfflineSince = 0
	d.nOnline++
	d.gen.Add(1)
}

// DropDead removes every record that has been continuously off-line for at
// least tDead (Section 3: assumed to have left permanently). It returns
// the ids dropped. Each drop leaves a death certificate so anti-entropy
// with a peer that has not yet dropped the record cannot resurrect it.
// Certificates are kept until a genuine rejoin (higher epoch) supersedes
// them: purging them on any clock re-opens the resurrection cycle,
// because replicas drop the same record at widely spread times (failure
// detection is randomized and every off-line clock starts when that
// replica's own sends first fail) and one expired certificate next to one
// laggard holder re-seeds the dead record community-wide. The certificate
// map needs no purge to stay bounded — ids are confined to [0, capacity),
// so it never outgrows the entry table it shadows.
func (d *Directory) DropDead(tDead time.Duration, now time.Duration) []PeerID {
	d.mu.Lock()
	defer d.mu.Unlock()
	var dropped []PeerID
	for id := range d.entries {
		e := &d.entries[id]
		if e.Known && !e.Online && now-e.OfflineSince >= tDead {
			d.digest ^= recHash(PeerID(id), e.Ver)
			d.tombs[PeerID(id)] = tombstone{ver: e.Ver}
			*e = Entry{}
			delete(d.meta, PeerID(id))
			d.nKnown--
			dropped = append(dropped, PeerID(id))
		}
	}
	if dropped != nil {
		d.summaryCache = nil
		d.gen.Add(1)
	}
	return dropped
}

// Generation returns a counter that advances on every observable mutation
// (accepted upsert, on/off-line flip, drop). Two equal generations imply
// an unchanged directory; search layers use it to invalidate caches keyed
// on directory state. Reads take no lock.
func (d *Directory) Generation() uint64 { return d.gen.Load() }

// Digest returns a 64-bit fingerprint of the (id, version) state. Two
// directories with equal digests hold the same versions with overwhelming
// probability; the gossip layer uses this to skip summary exchanges
// between converged peers (a pure execution optimization — wire accounting
// still charges the full summary).
func (d *Directory) Digest() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.digest
}

// NumKnown returns the number of known records.
func (d *Directory) NumKnown() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.nKnown
}

// NumOnline returns the number of records currently believed on-line.
func (d *Directory) NumOnline() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.nOnline
}

// Summary returns the dense version vector (index = PeerID; zero Version =
// unknown). The returned slice is shared and immutable: callers must not
// modify it. Successive calls between mutations return the same slice, so
// converged anti-entropy costs no allocation.
func (d *Directory) Summary() []Version {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.summaryCache == nil {
		s := make([]Version, len(d.entries))
		for id := range d.entries {
			if d.entries[id].Known {
				s[id] = d.entries[id].Ver
			}
		}
		d.summaryCache = s
	}
	return d.summaryCache
}

// Missing compares the local state against a remote summary and returns
// the ids (paired with the local version, for diff-aware pulls) for which
// the remote side has strictly newer information.
type NeedEntry struct {
	ID   PeerID
	Have Version // zero if entirely unknown locally
}

// Missing returns what to pull from a peer whose summary is remote.
func (d *Directory) Missing(remote []Version) []NeedEntry {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var need []NeedEntry
	n := len(remote)
	if n > len(d.entries) {
		n = len(d.entries)
	}
	for id := 0; id < n; id++ {
		rv := remote[id]
		if rv.IsZero() {
			continue
		}
		e := &d.entries[id]
		if !e.Known || e.Ver.Less(rv) {
			// A certified-dead version is not worth pulling: Upsert would
			// reject it anyway. Skipping it here saves the wasted record
			// transfer on every exchange until the remote drops it too.
			if tomb, ok := d.tombs[PeerID(id)]; ok && !tomb.ver.Less(rv) {
				continue
			}
			need = append(need, NeedEntry{ID: PeerID(id), Have: e.Ver})
		}
	}
	return need
}

// PickFilter restricts PickOnline's choice.
type PickFilter func(id PeerID, e Entry) bool

// PickOnline returns a uniformly random known-on-line peer other than self
// satisfying filter (nil filter accepts all). It returns (None, false)
// when no candidate exists. The implementation probes random ids first —
// O(1) when most peers are on-line — and falls back to a linear scan.
func (d *Directory) PickOnline(rng *rand.Rand, filter PickFilter) (PeerID, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n := len(d.entries)
	if n == 0 || d.nOnline == 0 {
		return None, false
	}
	ok := func(id PeerID) bool {
		e := d.entries[id]
		return e.Known && e.Online && id != d.self && (filter == nil || filter(id, e))
	}
	for attempt := 0; attempt < 64; attempt++ {
		id := PeerID(rng.Intn(n))
		if ok(id) {
			return id, true
		}
	}
	// Rare fallback: reservoir-sample the eligible set.
	var chosen PeerID = None
	count := 0
	for id := 0; id < n; id++ {
		if ok(PeerID(id)) {
			count++
			if rng.Intn(count) == 0 {
				chosen = PeerID(id)
			}
		}
	}
	return chosen, chosen != None
}

// PickOffline returns a uniformly random known-off-line peer other than
// self, or (None, false) when every known peer is on-line. The gossip
// layer uses it to probe suspected-dead peers for recovery — the path by
// which a healed partition or a transiently unreachable peer is
// rediscovered. Linear reservoir scan: off-line peers are the exception
// and the call runs at most once every few rounds.
func (d *Directory) PickOffline(rng *rand.Rand) (PeerID, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var chosen PeerID = None
	count := 0
	for id := range d.entries {
		e := &d.entries[id]
		if e.Known && !e.Online && PeerID(id) != d.self {
			count++
			if rng.Intn(count) == 0 {
				chosen = PeerID(id)
			}
		}
	}
	return chosen, chosen != None
}

// OnlineIDs returns the ids currently believed on-line (excluding none —
// self is included if its record is present and on-line).
func (d *Directory) OnlineIDs() []PeerID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]PeerID, 0, d.nOnline)
	for id := range d.entries {
		if d.entries[id].Known && d.entries[id].Online {
			out = append(out, PeerID(id))
		}
	}
	return out
}

// SampleOnline returns a uniformly random sample of at most max
// known-on-line records other than self, for peer-exchange replies
// (bootstrap discovery). Each record carries the peer's address, class,
// and wire sizes but not its Bloom-filter payload: discovery needs
// contacts, not content — a requester pulls filters through normal
// anti-entropy once it knows who exists. Reservoir sampling keeps the
// pass linear with a max-bounded allocation.
func (d *Directory) SampleOnline(rng *rand.Rand, max int) []Record {
	if max <= 0 {
		return nil
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	var out []Record
	count := 0
	for id := range d.entries {
		e := &d.entries[id]
		if !e.Known || !e.Online || PeerID(id) == d.self {
			continue
		}
		count++
		if len(out) < max {
			out = append(out, d.sampleRecordLocked(PeerID(id)))
		} else if j := rng.Intn(count); j < max {
			out[j] = d.sampleRecordLocked(PeerID(id))
		}
	}
	return out
}

// sampleRecordLocked builds a payload-free record for SampleOnline.
func (d *Directory) sampleRecordLocked(id PeerID) Record {
	e := d.entries[id]
	rec := Record{
		ID: id, Ver: e.Ver, Class: e.Class,
		PayloadSize: e.PayloadSize, DiffSize: e.DiffSize,
	}
	if m := d.meta[id]; m != nil {
		rec.Addr = m.addr
	}
	return rec
}

// KnownIDs returns all known ids.
func (d *Directory) KnownIDs() []PeerID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]PeerID, 0, d.nKnown)
	for id := range d.entries {
		if d.entries[id].Known {
			out = append(out, PeerID(id))
		}
	}
	return out
}
