// Package search implements PlanetP's content search and retrieval engine
// (Section 5): exhaustive (conjunctive) search over the gossiped Bloom
// filters, the TFxIPF vector-space ranking that approximates TFxIDF using
// only Bloom-filter summaries, the adaptive stopping heuristic (equation
// 4), and persistent queries.
package search

import (
	"math"
	"sort"

	"planetp/internal/directory"
	"planetp/internal/metrics"
)

// FilterView is the searcher's read-only view of the community's Bloom
// filters (its local directory replica, or the IR simulator's synthetic
// community).
type FilterView interface {
	// Peers returns the searchable peers (typically those believed
	// on-line, or all peers in an optimistic off-line-aware search).
	Peers() []directory.PeerID
	// Contains reports whether peer id's Bloom filter may contain term.
	Contains(id directory.PeerID, term string) bool
}

// DocResult is one document returned by a peer's local index in response
// to a query: the per-term frequencies and length needed for equation 2.
type DocResult struct {
	// Peer holds the document.
	Peer directory.PeerID
	// Key identifies the document globally (content hash).
	Key string
	// TermFreqs maps each query term to f_{D,t} (absent = 0).
	TermFreqs map[string]int
	// DocLen is |D|, the number of terms in the document.
	DocLen int
}

// Fetcher executes a query against one peer's local index. Live mode goes
// over the network; simulations call in-process. An error means the peer
// was unreachable; the searcher skips it.
type Fetcher interface {
	// QueryPeer returns the peer's documents containing at least one of
	// terms (for ranked search) along with ranking statistics.
	QueryPeer(id directory.PeerID, terms []string) ([]DocResult, error)
	// QueryPeerAll returns only documents containing every term
	// (exhaustive search).
	QueryPeerAll(id directory.PeerID, terms []string) ([]DocResult, error)
}

// IPF computes the inverse peer frequency for each term (Section 5.2):
// IPF_t = log(1 + N/N_t), where N is the community size and N_t the number
// of peers whose Bloom filter contains t. Terms hit by no peer are given
// IPF 0 (they cannot contribute to any peer's rank anyway).
func IPF(view FilterView, terms []string) map[string]float64 {
	peers := view.Peers()
	n := float64(len(peers))
	out := make(map[string]float64, len(terms))
	for _, t := range terms {
		nt := 0
		for _, id := range peers {
			if view.Contains(id, t) {
				nt++
			}
		}
		if nt == 0 {
			out[t] = 0
			continue
		}
		out[t] = math.Log(1 + n/float64(nt))
	}
	return out
}

// PeerRank is one peer's relevance to a query (equation 3).
type PeerRank struct {
	Peer  directory.PeerID
	Score float64
}

// RankPeers orders peers by R_i(Q) = sum of IPF_t over query terms t in
// BF_i (equation 3), descending; ties break by peer id for determinism.
// Peers with score 0 (no query term hits) are omitted.
func RankPeers(view FilterView, terms []string, ipf map[string]float64) []PeerRank {
	peers := view.Peers()
	out := make([]PeerRank, 0, len(peers))
	for _, id := range peers {
		score := 0.0
		for _, t := range terms {
			if ipf[t] > 0 && view.Contains(id, t) {
				score += ipf[t]
			}
		}
		if score > 0 {
			out = append(out, PeerRank{Peer: id, Score: score})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Peer < out[j].Peer
	})
	return out
}

// ScoreDoc computes equation 2 with IPF substituted for IDF:
//
//	Sim(Q,D) = Σ_{t∈Q} w_{D,t} × IPF_t / sqrt(|D|),  w_{D,t} = 1+log(f_{D,t})
func ScoreDoc(d DocResult, ipf map[string]float64) float64 {
	if d.DocLen <= 0 {
		return 0
	}
	sum := 0.0
	for t, f := range d.TermFreqs {
		if f <= 0 {
			continue
		}
		w := 1 + math.Log(float64(f))
		sum += w * ipf[t]
	}
	return sum / math.Sqrt(float64(d.DocLen))
}

// ScoredDoc is a ranked search hit.
type ScoredDoc struct {
	DocResult
	Score float64
}

// StopP computes equation 4's stopping window: the number of consecutive
// non-contributing peers tolerated before the search stops,
// p = floor(2 + N/300) + 2*floor(k/50).
func StopP(n, k int) int {
	return 2 + n/300 + 2*(k/50)
}

// Stats reports what a ranked search cost.
type Stats struct {
	// PeersRanked is the number of candidate peers (non-zero rank).
	PeersRanked int
	// PeersContacted is how many peers were actually queried.
	PeersContacted int
	// DocsRetrieved counts documents fetched (before top-k truncation).
	DocsRetrieved int
	// StopIterations counts the contact-group iterations the stopping
	// loop ran (each evaluates the adaptive rule once).
	StopIterations int
	// StoppedEarly reports whether the adaptive rule fired (vs running
	// out of candidates).
	StoppedEarly bool
}

// peersPerQueryBounds are the histogram buckets for peers contacted by
// one query.
var peersPerQueryBounds = []int64{1, 2, 5, 10, 20, 50, 100, 200, 500}

// record publishes a finished search's cost to reg (no-op when nil).
// queryKind distinguishes ranked from exhaustive searches.
func (st Stats) record(reg *metrics.Registry, queryKind string) {
	if reg == nil {
		return
	}
	reg.Counter("search_" + queryKind + "_queries_total").Inc()
	reg.Counter("search_peers_contacted_total").Add(int64(st.PeersContacted))
	reg.Counter("search_docs_retrieved_total").Add(int64(st.DocsRetrieved))
	reg.Counter("search_stop_iterations_total").Add(int64(st.StopIterations))
	if st.StoppedEarly {
		reg.Counter("search_stopped_early_total").Inc()
	}
	reg.Histogram("search_peers_per_query", peersPerQueryBounds).
		Observe(int64(st.PeersContacted))
}

// Options tunes a ranked search.
type Options struct {
	// K is the number of documents the user wants.
	K int
	// GroupSize contacts peers in groups of m to trade extra contacts
	// for lower latency (Section 5.2); 0/1 = one by one.
	GroupSize int
	// StopWindow overrides equation 4 when > 0 (used by ablations).
	StopWindow int
	// NoAdaptiveStop disables the heuristic entirely: contact peers
	// until k documents are retrieved (the naive rule the paper says
	// performs terribly).
	NoAdaptiveStop bool
	// Metrics, if non-nil, receives per-query counters (search_*
	// names). Nil disables instrumentation.
	Metrics *metrics.Registry
}

// Ranked runs the full TFxIPF selective search (Section 5.2): rank peers
// by equation 3, contact them in rank order, rank their documents by
// equation 2, and stop when p consecutive peers fail to contribute to the
// current top k.
func Ranked(view FilterView, fetch Fetcher, terms []string, opt Options) ([]ScoredDoc, Stats) {
	var st Stats
	if opt.K <= 0 || len(terms) == 0 {
		return nil, st
	}
	ipf := IPF(view, terms)
	ranked := RankPeers(view, terms, ipf)
	st.PeersRanked = len(ranked)

	p := opt.StopWindow
	if p <= 0 {
		p = StopP(len(view.Peers()), opt.K)
	}
	group := opt.GroupSize
	if group <= 0 {
		group = 1
	}

	var top []ScoredDoc // sorted descending, truncated to K
	seen := make(map[string]bool)
	noContrib := 0

	for i := 0; i < len(ranked); i += group {
		end := i + group
		if end > len(ranked) {
			end = len(ranked)
		}
		st.StopIterations++
		contributed := false
		for _, pr := range ranked[i:end] {
			docs, err := fetch.QueryPeer(pr.Peer, terms)
			st.PeersContacted++
			if err != nil {
				continue
			}
			st.DocsRetrieved += len(docs)
			for _, d := range docs {
				if seen[d.Key] {
					continue
				}
				seen[d.Key] = true
				sd := ScoredDoc{DocResult: d, Score: ScoreDoc(d, ipf)}
				if insertTopK(&top, sd, opt.K) {
					contributed = true
				}
			}
		}
		if opt.NoAdaptiveStop {
			if len(top) >= opt.K {
				break
			}
			continue
		}
		// The adaptive rule only arms once an initial k documents are
		// in hand (Section 5.2).
		if len(top) >= opt.K {
			if contributed {
				noContrib = 0
			} else {
				noContrib += end - i
				if noContrib >= p {
					st.StoppedEarly = true
					break
				}
			}
		}
	}
	st.record(opt.Metrics, "ranked")
	return top, st
}

// insertTopK inserts sd into the descending top list, keeping at most k
// entries. It reports whether sd made the cut.
func insertTopK(top *[]ScoredDoc, sd ScoredDoc, k int) bool {
	t := *top
	if len(t) >= k && sd.Score <= t[len(t)-1].Score {
		return false
	}
	i := sort.Search(len(t), func(i int) bool {
		if t[i].Score != sd.Score {
			return t[i].Score < sd.Score
		}
		return t[i].Key > sd.Key // deterministic tiebreak
	})
	t = append(t, ScoredDoc{})
	copy(t[i+1:], t[i:])
	t[i] = sd
	if len(t) > k {
		t = t[:k]
	}
	*top = t
	return i < k
}

// Exhaustive runs the conjunctive search of Section 5.1: Bloom filters
// select the candidate peers (those whose filter contains every term);
// each candidate is asked for its matching documents. Unreachable peers
// are skipped. Results are sorted by document key. Only opt.Metrics is
// consulted (exhaustive search has no k or stopping rule).
func Exhaustive(view FilterView, fetch Fetcher, terms []string, opt Options) ([]DocResult, Stats) {
	var st Stats
	if len(terms) == 0 {
		return nil, st
	}
	var out []DocResult
	seen := make(map[string]bool)
	for _, id := range view.Peers() {
		all := true
		for _, t := range terms {
			if !view.Contains(id, t) {
				all = false
				break
			}
		}
		if !all {
			continue
		}
		st.PeersRanked++
		docs, err := fetch.QueryPeerAll(id, terms)
		st.PeersContacted++
		if err != nil {
			continue
		}
		st.DocsRetrieved += len(docs)
		for _, d := range docs {
			if !seen[d.Key] {
				seen[d.Key] = true
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	st.record(opt.Metrics, "exhaustive")
	return out, st
}
