// Package search implements PlanetP's content search and retrieval engine
// (Section 5): exhaustive (conjunctive) search over the gossiped Bloom
// filters, the TFxIPF vector-space ranking that approximates TFxIDF using
// only Bloom-filter summaries, the adaptive stopping heuristic (equation
// 4), and persistent queries.
//
// The query fast path hashes each query term exactly once (bloom.Digest),
// sweeps every peer's filter with the precomputed digests, memoizes the
// per-query IPF map and peer ranking in an IPFCache keyed by directory
// version, and overlaps the per-group peer contacts of Section 5.2's
// "groups of m" rule with bounded concurrency while keeping results
// byte-identical to a sequential sweep.
package search

import (
	"context"
	"math"
	"sort"
	"sync"
	"time"

	"planetp/internal/bloom"
	"planetp/internal/directory"
	"planetp/internal/metrics"
)

// FilterView is the searcher's read-only view of the community's Bloom
// filters (its local directory replica, or the IR simulator's synthetic
// community).
type FilterView interface {
	// Peers returns the searchable peers (typically those believed
	// on-line, or all peers in an optimistic off-line-aware search).
	Peers() []directory.PeerID
	// Contains reports whether peer id's Bloom filter may contain term.
	Contains(id directory.PeerID, term string) bool
}

// DigestView is an optional FilterView extension: views backed by real
// Bloom filters answer membership for a precomputed digest, so a query
// hashes each term once instead of once per (peer, term). The query
// engine probes through this interface whenever the view provides it.
type DigestView interface {
	FilterView
	// ContainsDigest reports whether peer id's filter may contain the
	// key summarized by d.
	ContainsDigest(id directory.PeerID, d bloom.Digest) bool
}

// VersionedView is an optional FilterView extension: the view reports a
// version of its filter state that advances on every observable change
// (e.g. the directory replica's mutation generation). IPFCache uses it to
// drop stale entries automatically. ok=false means the view cannot
// version itself; caches then rely on explicit Invalidate calls.
type VersionedView interface {
	ViewVersion() (version uint64, ok bool)
}

// digestCapable lets wrapper views (MergedView) report whether their base
// actually supports digest probing; absent, implementing DigestView is
// taken as support.
type digestCapable interface {
	DigestProbes() bool
}

// query binds one query's terms to a view, hashing each term exactly
// once. When the view implements DigestView every probe is digest-based;
// otherwise probes fall back to Contains (the view re-hashes internally,
// as before the fast path).
type query struct {
	view    FilterView
	dv      DigestView
	terms   []string
	digests []bloom.Digest
}

// newQuery prepares the hash-once prober for terms against view.
func newQuery(view FilterView, terms []string) query {
	q := query{view: view, terms: terms}
	if dv, ok := view.(DigestView); ok {
		if dc, ok2 := view.(digestCapable); !ok2 || dc.DigestProbes() {
			q.dv = dv
			q.digests = bloom.MakeDigests(terms)
		}
	}
	return q
}

// contains probes term i of the query against peer id.
func (q *query) contains(id directory.PeerID, i int) bool {
	if q.dv != nil {
		return q.dv.ContainsDigest(id, q.digests[i])
	}
	return q.view.Contains(id, q.terms[i])
}

// containsAll reports whether peer id's filter may contain every term,
// stopping at the first miss.
func (q *query) containsAll(id directory.PeerID) bool {
	for i := range q.terms {
		if !q.contains(id, i) {
			return false
		}
	}
	return true
}

// ipf computes equation 1 over the given peers with one filter sweep per
// term (see IPF).
func (q *query) ipf(peers []directory.PeerID) map[string]float64 {
	n := float64(len(peers))
	out := make(map[string]float64, len(q.terms))
	for i, t := range q.terms {
		nt := 0
		for _, id := range peers {
			if q.contains(id, i) {
				nt++
			}
		}
		if nt == 0 {
			out[t] = 0
			continue
		}
		out[t] = math.Log(1 + n/float64(nt))
	}
	return out
}

// rank computes equation 3 over the given peers (see RankPeers). Summation
// follows query-term order so scores are bit-identical to the pre-digest
// implementation.
func (q *query) rank(peers []directory.PeerID, ipf map[string]float64) []PeerRank {
	type termWeight struct {
		idx int
		w   float64
	}
	// Zero-IPF terms cannot contribute; drop them before the peer sweep.
	tw := make([]termWeight, 0, len(q.terms))
	for i, t := range q.terms {
		if w := ipf[t]; w > 0 {
			tw = append(tw, termWeight{idx: i, w: w})
		}
	}
	out := make([]PeerRank, 0, len(peers))
	for _, id := range peers {
		score := 0.0
		for _, t := range tw {
			if q.contains(id, t.idx) {
				score += t.w
			}
		}
		if score > 0 {
			out = append(out, PeerRank{Peer: id, Score: score})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Peer < out[j].Peer
	})
	return out
}

// DocResult is one document returned by a peer's local index in response
// to a query: the per-term frequencies and length needed for equation 2.
type DocResult struct {
	// Peer holds the document.
	Peer directory.PeerID
	// Key identifies the document globally (content hash).
	Key string
	// TermFreqs maps each query term to f_{D,t} (absent = 0).
	TermFreqs map[string]int
	// DocLen is |D|, the number of terms in the document.
	DocLen int
}

// Fetcher executes a query against one peer's local index. Live mode goes
// over the network; simulations call in-process. An error means the peer
// was unreachable; the searcher skips it. A Fetcher must be safe for
// concurrent use when searches run with Options.Concurrency > 1.
type Fetcher interface {
	// QueryPeer returns the peer's documents containing at least one of
	// terms (for ranked search) along with ranking statistics.
	QueryPeer(id directory.PeerID, terms []string) ([]DocResult, error)
	// QueryPeerAll returns only documents containing every term
	// (exhaustive search).
	QueryPeerAll(id directory.PeerID, terms []string) ([]DocResult, error)
}

// ContextFetcher is an optional Fetcher extension: fetchers that honor
// cancellation let the searcher bound each peer contact with
// Options.PeerTimeout (a slow peer then counts as unreachable instead of
// stalling the whole group).
type ContextFetcher interface {
	QueryPeerContext(ctx context.Context, id directory.PeerID, terms []string) ([]DocResult, error)
	QueryPeerAllContext(ctx context.Context, id directory.PeerID, terms []string) ([]DocResult, error)
}

// IPF computes the inverse peer frequency for each term (Section 5.2):
// IPF_t = log(1 + N/N_t), where N is the community size and N_t the number
// of peers whose Bloom filter contains t. Terms hit by no peer are given
// IPF 0 (they cannot contribute to any peer's rank anyway).
func IPF(view FilterView, terms []string) map[string]float64 {
	q := newQuery(view, terms)
	return q.ipf(view.Peers())
}

// PeerRank is one peer's relevance to a query (equation 3).
type PeerRank struct {
	Peer  directory.PeerID
	Score float64
}

// RankPeers orders peers by R_i(Q) = sum of IPF_t over query terms t in
// BF_i (equation 3), descending; ties break by peer id for determinism.
// Peers with score 0 (no query term hits) are omitted.
func RankPeers(view FilterView, terms []string, ipf map[string]float64) []PeerRank {
	q := newQuery(view, terms)
	return q.rank(view.Peers(), ipf)
}

// ScoreDoc computes equation 2 with IPF substituted for IDF:
//
//	Sim(Q,D) = Σ_{t∈Q} w_{D,t} × IPF_t / sqrt(|D|),  w_{D,t} = 1+log(f_{D,t})
//
// Summation runs in sorted term order: float addition is not associative,
// and ranging the map directly would make the last ulp of a score — and
// thus occasionally the top-k cut — vary run to run.
func ScoreDoc(d DocResult, ipf map[string]float64) float64 {
	if d.DocLen <= 0 {
		return 0
	}
	terms := make([]string, 0, len(d.TermFreqs))
	for t := range d.TermFreqs {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	sum := 0.0
	for _, t := range terms {
		f := d.TermFreqs[t]
		if f <= 0 {
			continue
		}
		w := 1 + math.Log(float64(f))
		sum += w * ipf[t]
	}
	return sum / math.Sqrt(float64(d.DocLen))
}

// ScoredDoc is a ranked search hit.
type ScoredDoc struct {
	DocResult
	Score float64
}

// StopP computes equation 4's stopping window: the number of consecutive
// non-contributing peers tolerated before the search stops,
// p = floor(2 + N/300) + 2*floor(k/50).
func StopP(n, k int) int {
	return 2 + n/300 + 2*(k/50)
}

// Stats reports what a ranked search cost.
type Stats struct {
	// PeersRanked is the number of candidate peers (non-zero rank).
	PeersRanked int
	// PeersContacted is how many peers were actually queried.
	PeersContacted int
	// DocsRetrieved counts documents fetched (before top-k truncation).
	DocsRetrieved int
	// StopIterations counts the contact-group iterations the stopping
	// loop ran (each evaluates the adaptive rule once).
	StopIterations int
	// StoppedEarly reports whether the adaptive rule fired (vs running
	// out of candidates).
	StoppedEarly bool
}

// peersPerQueryBounds are the histogram buckets for peers contacted by
// one query.
var peersPerQueryBounds = []int64{1, 2, 5, 10, 20, 50, 100, 200, 500}

// record publishes a finished search's cost to reg (no-op when nil).
// queryKind distinguishes ranked from exhaustive searches.
func (st Stats) record(reg *metrics.Registry, queryKind string) {
	if reg == nil {
		return
	}
	reg.Counter("search_" + queryKind + "_queries_total").Inc()
	reg.Counter("search_peers_contacted_total").Add(int64(st.PeersContacted))
	reg.Counter("search_docs_retrieved_total").Add(int64(st.DocsRetrieved))
	reg.Counter("search_stop_iterations_total").Add(int64(st.StopIterations))
	if st.StoppedEarly {
		reg.Counter("search_stopped_early_total").Inc()
	}
	reg.Histogram("search_peers_per_query", peersPerQueryBounds).
		Observe(int64(st.PeersContacted))
}

// Options tunes a ranked search.
type Options struct {
	// K is the number of documents the user wants.
	K int
	// GroupSize contacts peers in groups of m to trade extra contacts
	// for lower latency (Section 5.2); 0/1 = one by one.
	GroupSize int
	// StopWindow overrides equation 4 when > 0 (used by ablations).
	StopWindow int
	// NoAdaptiveStop disables the heuristic entirely: contact peers
	// until k documents are retrieved (the naive rule the paper says
	// performs terribly).
	NoAdaptiveStop bool
	// Concurrency bounds how many peers of one contact group (or
	// exhaustive candidates) are queried at once. 0 or 1 contacts peers
	// sequentially; higher values overlap the per-peer latency the
	// paper's group rule exists to hide. Responses are merged in rank
	// order, so results are byte-identical regardless of the setting.
	// Values > 1 require a Fetcher safe for concurrent use.
	Concurrency int
	// PeerTimeout bounds each peer contact when the Fetcher also
	// implements ContextFetcher; 0 means no per-peer deadline.
	PeerTimeout time.Duration
	// Cache, if non-nil, memoizes the query's IPF map and peer ranking
	// keyed by (view version, term sequence); see IPFCache.
	Cache *IPFCache
	// Metrics, if non-nil, receives per-query counters (search_*
	// names). Nil disables instrumentation.
	Metrics *metrics.Registry
}

// fetchLatencyBounds are the microsecond buckets for the per-peer
// search_fetch_latency_us histogram.
var fetchLatencyBounds = []int64{
	50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000, 500000,
}

// contactor runs one search's per-peer fetches: bounded fan-out, optional
// per-peer deadline, latency instrumentation resolved once per search.
type contactor struct {
	fetch   Fetcher
	cf      ContextFetcher // non-nil only when a timeout is in force
	terms   []string
	all     bool
	timeout time.Duration
	limit   int
	hist    *metrics.Histogram
}

// newContactor resolves opt's fetch policy once.
func newContactor(fetch Fetcher, terms []string, all bool, opt Options) contactor {
	c := contactor{fetch: fetch, terms: terms, all: all, limit: opt.Concurrency}
	if c.limit < 1 {
		c.limit = 1
	}
	if opt.PeerTimeout > 0 {
		if cf, ok := fetch.(ContextFetcher); ok {
			c.cf = cf
			c.timeout = opt.PeerTimeout
		}
	}
	if opt.Metrics != nil {
		c.hist = opt.Metrics.Histogram("search_fetch_latency_us", fetchLatencyBounds)
	}
	return c
}

// one contacts a single peer.
func (c *contactor) one(id directory.PeerID) ([]DocResult, error) {
	var start time.Time
	if c.hist != nil {
		start = time.Now()
	}
	var docs []DocResult
	var err error
	switch {
	case c.cf != nil:
		ctx, cancel := context.WithTimeout(context.Background(), c.timeout)
		if c.all {
			docs, err = c.cf.QueryPeerAllContext(ctx, id, c.terms)
		} else {
			docs, err = c.cf.QueryPeerContext(ctx, id, c.terms)
		}
		cancel()
	case c.all:
		docs, err = c.fetch.QueryPeerAll(id, c.terms)
	default:
		docs, err = c.fetch.QueryPeer(id, c.terms)
	}
	if c.hist != nil {
		c.hist.Observe(time.Since(start).Microseconds())
	}
	return docs, err
}

// fetchResult is one peer's response.
type fetchResult struct {
	docs []DocResult
	err  error
}

// group contacts ids (one rank-order contact group), overlapping fetches
// up to the concurrency bound, and returns responses positionally so the
// caller's sequential merge is identical to a serial sweep.
func (c *contactor) group(ids []directory.PeerID, scratch []fetchResult) []fetchResult {
	out := scratch[:0]
	for range ids {
		out = append(out, fetchResult{})
	}
	workers := c.limit
	if workers > len(ids) {
		workers = len(ids)
	}
	if workers <= 1 {
		for i, id := range ids {
			out[i].docs, out[i].err = c.one(id)
		}
		return out
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := range ids {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			out[i].docs, out[i].err = c.one(ids[i])
			<-sem
		}(i)
	}
	wg.Wait()
	return out
}

// rankedFor computes — or fetches from opt.Cache — the query's IPF map
// and peer ranking.
func rankedFor(q *query, opt Options) (map[string]float64, []PeerRank) {
	if opt.Cache != nil {
		return opt.Cache.rankFor(q, opt.Metrics)
	}
	peers := q.view.Peers()
	ipf := q.ipf(peers)
	return ipf, q.rank(peers, ipf)
}

// Ranked runs the full TFxIPF selective search (Section 5.2): rank peers
// by equation 3, contact them in rank order, rank their documents by
// equation 2, and stop when p consecutive peers fail to contribute to the
// current top k. Peers within one contact group are fetched concurrently
// when Options.Concurrency allows; the merge happens in rank order, so
// the result set and Stats match the sequential sweep exactly.
func Ranked(view FilterView, fetch Fetcher, terms []string, opt Options) ([]ScoredDoc, Stats) {
	var st Stats
	if opt.K <= 0 || len(terms) == 0 {
		return nil, st
	}
	q := newQuery(view, terms)
	ipf, ranked := rankedFor(&q, opt)
	st.PeersRanked = len(ranked)

	p := opt.StopWindow
	if p <= 0 {
		p = StopP(len(view.Peers()), opt.K)
	}
	group := opt.GroupSize
	if group <= 0 {
		group = 1
	}

	contact := newContactor(fetch, terms, false, opt)
	var top []ScoredDoc // sorted descending, truncated to K
	seen := make(map[string]bool, 4*opt.K)
	noContrib := 0
	// Scratch buffers reused across groups: peer ids and their responses.
	ids := make([]directory.PeerID, 0, group)
	results := make([]fetchResult, 0, group)

	for i := 0; i < len(ranked); i += group {
		end := i + group
		if end > len(ranked) {
			end = len(ranked)
		}
		st.StopIterations++
		contributed := false
		ids = ids[:0]
		for _, pr := range ranked[i:end] {
			ids = append(ids, pr.Peer)
		}
		results = contact.group(ids, results)
		for _, res := range results {
			st.PeersContacted++
			if res.err != nil {
				continue
			}
			st.DocsRetrieved += len(res.docs)
			for _, d := range res.docs {
				if seen[d.Key] {
					continue
				}
				seen[d.Key] = true
				sd := ScoredDoc{DocResult: d, Score: ScoreDoc(d, ipf)}
				if insertTopK(&top, sd, opt.K) {
					contributed = true
				}
			}
		}
		if opt.NoAdaptiveStop {
			if len(top) >= opt.K {
				break
			}
			continue
		}
		// The adaptive rule only arms once an initial k documents are
		// in hand (Section 5.2).
		if len(top) >= opt.K {
			if contributed {
				noContrib = 0
			} else {
				noContrib += end - i
				if noContrib >= p {
					st.StoppedEarly = true
					break
				}
			}
		}
	}
	st.record(opt.Metrics, "ranked")
	return top, st
}

// insertTopK inserts sd into the descending top list, keeping at most k
// entries. It reports whether sd made the cut.
func insertTopK(top *[]ScoredDoc, sd ScoredDoc, k int) bool {
	t := *top
	if len(t) >= k && sd.Score <= t[len(t)-1].Score {
		return false
	}
	i := sort.Search(len(t), func(i int) bool {
		if t[i].Score != sd.Score {
			return t[i].Score < sd.Score
		}
		return t[i].Key > sd.Key // deterministic tiebreak
	})
	t = append(t, ScoredDoc{})
	copy(t[i+1:], t[i:])
	t[i] = sd
	if len(t) > k {
		t = t[:k]
	}
	*top = t
	return i < k
}

// Exhaustive runs the conjunctive search of Section 5.1: Bloom filters
// select the candidate peers (those whose filter contains every term,
// probed with hash-once digests); each candidate is asked for its
// matching documents, concurrently up to Options.Concurrency. Unreachable
// peers are skipped. Results are sorted by document key.
func Exhaustive(view FilterView, fetch Fetcher, terms []string, opt Options) ([]DocResult, Stats) {
	var st Stats
	if len(terms) == 0 {
		return nil, st
	}
	q := newQuery(view, terms)
	peers := view.Peers()
	candidates := make([]directory.PeerID, 0, len(peers))
	for _, id := range peers {
		if q.containsAll(id) {
			candidates = append(candidates, id)
		}
	}
	st.PeersRanked = len(candidates)

	contact := newContactor(fetch, terms, true, opt)
	results := contact.group(candidates, make([]fetchResult, 0, len(candidates)))
	var out []DocResult
	seen := make(map[string]bool, 2*len(candidates))
	for _, res := range results {
		st.PeersContacted++
		if res.err != nil {
			continue
		}
		st.DocsRetrieved += len(res.docs)
		for _, d := range res.docs {
			if !seen[d.Key] {
				seen[d.Key] = true
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	st.record(opt.Metrics, "exhaustive")
	return out, st
}
