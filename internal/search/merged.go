package search

import (
	"planetp/internal/bloom"
	"planetp/internal/directory"
)

// MergedView implements the storage/accuracy trade of Section 2,
// advantage (3): a memory-constrained peer "may choose to combine the
// filters of several peers to save space; the trade-off is that it must
// now contact this set of peers whenever a query hits on this combined
// filter".
//
// MergedView wraps a base FilterView and partitions its peers into
// groups. Contains(id, term) answers for the whole group containing id —
// true if ANY member's filter may contain the term — so ranking and
// candidate selection degrade gracefully: a hit pulls in the entire
// group, never loses a true candidate (no false negatives), and costs
// 1/groupSize of the filter storage on a device that actually merges the
// underlying bitmaps.
type MergedView struct {
	base FilterView
	// basedv is base's digest-probing capability (nil when absent), so
	// the query fast path flows through group semantics unchanged.
	basedv DigestView
	// group maps a peer to its group's representative member list.
	group map[directory.PeerID][]directory.PeerID
	peers []directory.PeerID
}

// NewMergedView partitions base's peers into contiguous groups of
// groupSize (>=1).
func NewMergedView(base FilterView, groupSize int) *MergedView {
	if groupSize < 1 {
		groupSize = 1
	}
	peers := base.Peers()
	mv := &MergedView{
		base:  base,
		group: make(map[directory.PeerID][]directory.PeerID, len(peers)),
		peers: peers,
	}
	mv.basedv, _ = base.(DigestView)
	for i := 0; i < len(peers); i += groupSize {
		end := i + groupSize
		if end > len(peers) {
			end = len(peers)
		}
		members := peers[i:end]
		for _, id := range members {
			mv.group[id] = members
		}
	}
	return mv
}

// Peers implements FilterView.
func (mv *MergedView) Peers() []directory.PeerID { return mv.peers }

// Contains implements FilterView with group semantics: a term "may be at"
// peer id if any member of id's group may have it. This is exactly what
// querying a merged (OR-ed) Bloom filter of the group would answer.
func (mv *MergedView) Contains(id directory.PeerID, term string) bool {
	for _, member := range mv.group[id] {
		if mv.base.Contains(member, term) {
			return true
		}
	}
	return false
}

// ContainsDigest implements DigestView with the same group semantics as
// Contains, probing the base's filters with the precomputed digest.
func (mv *MergedView) ContainsDigest(id directory.PeerID, d bloom.Digest) bool {
	for _, member := range mv.group[id] {
		if mv.basedv.ContainsDigest(member, d) {
			return true
		}
	}
	return false
}

// DigestProbes reports whether the wrapped base can probe digests; when
// it cannot, the query engine falls back to Contains even though
// MergedView structurally satisfies DigestView.
func (mv *MergedView) DigestProbes() bool { return mv.basedv != nil }

// ViewVersion implements VersionedView by forwarding the base's version.
// The peer partition is fixed at construction, so group semantics add no
// versioned state of their own.
func (mv *MergedView) ViewVersion() (uint64, bool) {
	if vv, ok := mv.base.(VersionedView); ok {
		return vv.ViewVersion()
	}
	return 0, false
}

// Groups returns the number of groups (the merged-filter storage cost in
// units of one filter).
func (mv *MergedView) Groups() int {
	seen := 0
	prev := directory.None
	for _, id := range mv.peers {
		g := mv.group[id]
		if len(g) > 0 && g[0] != prev {
			seen++
			prev = g[0]
		}
	}
	return seen
}
