package search

import (
	"fmt"
	"testing"

	"planetp/internal/directory"
)

func buildMergedFixture() *fakeCommunity {
	f := newFake()
	// 12 peers; only peer 7 holds "needle".
	for p := directory.PeerID(0); p < 12; p++ {
		terms := map[string]int{"common": 1}
		if p == 7 {
			terms["needle"] = 3
		}
		f.addDoc(p, fmt.Sprintf("d%d", p), terms)
	}
	return f
}

func TestMergedViewNoFalseNegatives(t *testing.T) {
	f := buildMergedFixture()
	for _, gs := range []int{1, 2, 3, 5, 12, 100} {
		mv := NewMergedView(f, gs)
		if !mv.Contains(7, "needle") {
			t.Fatalf("groupSize %d: lost the true holder", gs)
		}
		// Every peer that the base view hits must still hit merged.
		for _, id := range f.Peers() {
			if f.Contains(id, "common") && !mv.Contains(id, "common") {
				t.Fatalf("groupSize %d: false negative for peer %d", gs, id)
			}
		}
	}
}

func TestMergedViewGroupSemantics(t *testing.T) {
	f := buildMergedFixture()
	mv := NewMergedView(f, 4) // groups {0..3} {4..7} {8..11}
	// needle is at 7: the whole second group now "may have" it.
	for _, id := range []directory.PeerID{4, 5, 6, 7} {
		if !mv.Contains(id, "needle") {
			t.Fatalf("group member %d should hit", id)
		}
	}
	for _, id := range []directory.PeerID{0, 3, 8, 11} {
		if mv.Contains(id, "needle") {
			t.Fatalf("other group member %d should miss", id)
		}
	}
	if mv.Groups() != 3 {
		t.Fatalf("Groups = %d, want 3", mv.Groups())
	}
}

func TestMergedViewDegenerate(t *testing.T) {
	f := buildMergedFixture()
	mv := NewMergedView(f, 0) // clamps to 1: identical to base
	for _, id := range f.Peers() {
		for _, term := range []string{"common", "needle", "absent"} {
			if mv.Contains(id, term) != f.Contains(id, term) {
				t.Fatalf("groupSize 1 must equal base (peer %d term %q)", id, term)
			}
		}
	}
	if mv.Groups() != len(f.Peers()) {
		t.Fatalf("Groups = %d", mv.Groups())
	}
}

// The paper's trade-off, measured: with merged filters the search still
// finds everything (recall preserved) but contacts more peers.
func TestMergedViewTradeoff(t *testing.T) {
	f := buildMergedFixture()
	exact, stExact := Ranked(f, f, []string{"needle"}, Options{K: 3})
	mv := NewMergedView(f, 4)
	merged, stMerged := Ranked(mv, f, []string{"needle"}, Options{K: 3})

	if len(exact) != 1 || len(merged) != 1 || merged[0].Key != exact[0].Key {
		t.Fatalf("results differ: exact=%v merged=%v", exact, merged)
	}
	if stMerged.PeersContacted < stExact.PeersContacted {
		t.Fatalf("merged should contact at least as many peers: %d < %d",
			stMerged.PeersContacted, stExact.PeersContacted)
	}
	if stMerged.PeersContacted <= stExact.PeersContacted {
		// With groups of 4 the whole group around peer 7 ranks.
		t.Fatalf("expected extra contacts from group hit: exact=%d merged=%d",
			stExact.PeersContacted, stMerged.PeersContacted)
	}
}

func TestMergedViewExhaustive(t *testing.T) {
	f := buildMergedFixture()
	mv := NewMergedView(f, 6)
	docs, st := Exhaustive(mv, f, []string{"needle"}, Options{})
	if len(docs) != 1 || docs[0].Peer != 7 {
		t.Fatalf("docs = %v", docs)
	}
	// The whole 6-peer group was candidate.
	if st.PeersContacted != 6 {
		t.Fatalf("contacted %d, want 6 (the group)", st.PeersContacted)
	}
}
