package search

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"planetp/internal/directory"
)

// fakeCommunity implements FilterView and Fetcher over in-memory peers.
type fakeCommunity struct {
	// terms[peer] is the peer's term set (its "Bloom filter", exact).
	terms map[directory.PeerID]map[string]bool
	// docs[peer] are the peer's documents.
	docs map[directory.PeerID][]DocResult
	// fail makes QueryPeer error for these peers.
	fail map[directory.PeerID]bool
	// falsePositives adds terms that the "filter" claims but no doc has.
	queried []directory.PeerID
}

func newFake() *fakeCommunity {
	return &fakeCommunity{
		terms: map[directory.PeerID]map[string]bool{},
		docs:  map[directory.PeerID][]DocResult{},
		fail:  map[directory.PeerID]bool{},
	}
}

func (f *fakeCommunity) addDoc(peer directory.PeerID, key string, freqs map[string]int) {
	if f.terms[peer] == nil {
		f.terms[peer] = map[string]bool{}
	}
	n := 0
	for t, c := range freqs {
		f.terms[peer][t] = true
		n += c
	}
	f.docs[peer] = append(f.docs[peer], DocResult{Peer: peer, Key: key, TermFreqs: freqs, DocLen: n})
}

func (f *fakeCommunity) Peers() []directory.PeerID {
	out := make([]directory.PeerID, 0, len(f.terms))
	for id := range f.terms {
		out = append(out, id)
	}
	// deterministic order
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

func (f *fakeCommunity) Contains(id directory.PeerID, term string) bool {
	return f.terms[id][term]
}

func (f *fakeCommunity) QueryPeer(id directory.PeerID, terms []string) ([]DocResult, error) {
	f.queried = append(f.queried, id)
	if f.fail[id] {
		return nil, errors.New("unreachable")
	}
	var out []DocResult
	for _, d := range f.docs[id] {
		for _, t := range terms {
			if d.TermFreqs[t] > 0 {
				qf := map[string]int{}
				for _, qt := range terms {
					if d.TermFreqs[qt] > 0 {
						qf[qt] = d.TermFreqs[qt]
					}
				}
				out = append(out, DocResult{Peer: id, Key: d.Key, TermFreqs: qf, DocLen: d.DocLen})
				break
			}
		}
	}
	return out, nil
}

func (f *fakeCommunity) QueryPeerAll(id directory.PeerID, terms []string) ([]DocResult, error) {
	if f.fail[id] {
		return nil, errors.New("unreachable")
	}
	var out []DocResult
	for _, d := range f.docs[id] {
		all := true
		for _, t := range terms {
			if d.TermFreqs[t] <= 0 {
				all = false
				break
			}
		}
		if all {
			out = append(out, d)
		}
	}
	return out, nil
}

func TestIPF(t *testing.T) {
	f := newFake()
	f.addDoc(0, "d0", map[string]int{"common": 1, "rare": 1})
	f.addDoc(1, "d1", map[string]int{"common": 1})
	f.addDoc(2, "d2", map[string]int{"common": 1})
	ipf := IPF(f, []string{"common", "rare", "absent"})
	// common: N=3, N_t=3 -> log(2); rare: N_t=1 -> log(4); absent: 0.
	if math.Abs(ipf["common"]-math.Log(2)) > 1e-12 {
		t.Errorf("IPF(common) = %v", ipf["common"])
	}
	if math.Abs(ipf["rare"]-math.Log(4)) > 1e-12 {
		t.Errorf("IPF(rare) = %v", ipf["rare"])
	}
	if ipf["absent"] != 0 {
		t.Errorf("IPF(absent) = %v", ipf["absent"])
	}
	// Rare terms must outweigh common ones (the paper's core intuition).
	if ipf["rare"] <= ipf["common"] {
		t.Error("rare term should have higher IPF")
	}
}

func TestRankPeers(t *testing.T) {
	f := newFake()
	f.addDoc(0, "d0", map[string]int{"a": 1, "b": 1}) // both terms
	f.addDoc(1, "d1", map[string]int{"a": 1})         // common term only
	f.addDoc(2, "d2", map[string]int{"b": 1})         // rarer term only
	f.addDoc(3, "d3", map[string]int{"zz": 1})        // no query terms
	ipf := IPF(f, []string{"a", "b"})
	ranks := RankPeers(f, []string{"a", "b"}, ipf)
	if len(ranks) != 3 {
		t.Fatalf("ranks = %v (peer 3 must be excluded)", ranks)
	}
	if ranks[0].Peer != 0 {
		t.Fatalf("peer with all terms must rank first: %v", ranks)
	}
	// a is in 2 peers, b in 2 peers -> equal IPF; peers 1,2 tie and order
	// by id.
	if ranks[1].Peer != 1 || ranks[2].Peer != 2 {
		t.Fatalf("tie break by id: %v", ranks)
	}
}

func TestScoreDoc(t *testing.T) {
	ipf := map[string]float64{"a": 2.0, "b": 1.0}
	d := DocResult{TermFreqs: map[string]int{"a": 1, "b": 3}, DocLen: 4}
	want := (1*2.0 + (1+math.Log(3))*1.0) / 2.0
	if got := ScoreDoc(d, ipf); math.Abs(got-want) > 1e-12 {
		t.Fatalf("ScoreDoc = %v, want %v", got, want)
	}
	if ScoreDoc(DocResult{DocLen: 0}, ipf) != 0 {
		t.Fatal("zero-length doc must score 0")
	}
	if ScoreDoc(DocResult{TermFreqs: map[string]int{"a": 0}, DocLen: 5}, ipf) != 0 {
		t.Fatal("zero freq must not contribute")
	}
}

func TestStopPEquation4(t *testing.T) {
	// p = floor(2 + N/300) + 2*floor(k/50)
	cases := []struct{ n, k, want int }{
		{100, 10, 2}, {300, 10, 3}, {900, 10, 5},
		{100, 50, 4}, {100, 100, 6}, {400, 250, 13},
		{0, 0, 2},
	}
	for _, c := range cases {
		if got := StopP(c.n, c.k); got != c.want {
			t.Errorf("StopP(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func buildRankedCommunity() *fakeCommunity {
	f := newFake()
	// Peers 0..9; "topic" docs concentrated on low-numbered peers.
	for p := directory.PeerID(0); p < 10; p++ {
		for d := 0; d < 5; d++ {
			key := fmt.Sprintf("p%d-d%d", p, d)
			if int(p) < 3 {
				f.addDoc(p, key, map[string]int{"gossip": 3, "bloom": 2, "filler": 5})
			} else {
				f.addDoc(p, key, map[string]int{"filler": 8, "noise": 2})
			}
		}
	}
	return f
}

func TestRankedSearchFindsRelevant(t *testing.T) {
	f := buildRankedCommunity()
	docs, st := Ranked(f, f, []string{"gossip", "bloom"}, Options{K: 10})
	if len(docs) != 10 {
		t.Fatalf("got %d docs, want 10", len(docs))
	}
	for _, d := range docs {
		if d.Peer >= 3 {
			t.Fatalf("irrelevant doc in top-k: %+v", d)
		}
		if d.Score <= 0 {
			t.Fatalf("non-positive score: %+v", d)
		}
	}
	// Scores descending.
	for i := 1; i < len(docs); i++ {
		if docs[i].Score > docs[i-1].Score {
			t.Fatal("results not sorted by score")
		}
	}
	if st.PeersContacted == 0 || st.PeersContacted > st.PeersRanked {
		t.Fatalf("stats: %+v", st)
	}
}

func TestRankedSearchStopsEarly(t *testing.T) {
	f := newFake()
	// 40 peers all have the term, but only the first 3 (highest ranked
	// by an extra rare term) have high-value docs.
	for p := directory.PeerID(0); p < 40; p++ {
		freqs := map[string]int{"q": 1}
		if p < 3 {
			freqs["rareq"] = 5
		}
		f.addDoc(p, fmt.Sprintf("d%d", p), freqs)
	}
	_, st := Ranked(f, f, []string{"q", "rareq"}, Options{K: 3})
	if !st.StoppedEarly {
		t.Fatalf("adaptive stop did not fire: %+v", st)
	}
	if st.PeersContacted >= 40 {
		t.Fatalf("contacted everyone (%d) despite stop rule", st.PeersContacted)
	}
}

func TestRankedSearchGroupContacts(t *testing.T) {
	f := buildRankedCommunity()
	f.queried = nil
	_, st1 := Ranked(f, f, []string{"gossip"}, Options{K: 5, GroupSize: 1})
	f.queried = nil
	_, st3 := Ranked(f, f, []string{"gossip"}, Options{K: 5, GroupSize: 3})
	// Group contacting may query more peers, never fewer.
	if st3.PeersContacted < st1.PeersContacted {
		t.Fatalf("groups contacted fewer peers: %d vs %d", st3.PeersContacted, st1.PeersContacted)
	}
}

func TestRankedSearchSkipsFailedPeers(t *testing.T) {
	f := buildRankedCommunity()
	f.fail[0] = true
	docs, _ := Ranked(f, f, []string{"gossip", "bloom"}, Options{K: 10})
	for _, d := range docs {
		if d.Peer == 0 {
			t.Fatal("docs from failed peer")
		}
	}
	if len(docs) != 10 {
		t.Fatalf("got %d docs despite 2 healthy relevant peers", len(docs))
	}
}

func TestRankedSearchEdgeCases(t *testing.T) {
	f := buildRankedCommunity()
	if docs, _ := Ranked(f, f, nil, Options{K: 5}); docs != nil {
		t.Fatal("empty query returned docs")
	}
	if docs, _ := Ranked(f, f, []string{"gossip"}, Options{K: 0}); docs != nil {
		t.Fatal("k=0 returned docs")
	}
	if docs, _ := Ranked(f, f, []string{"nosuchterm"}, Options{K: 5}); len(docs) != 0 {
		t.Fatal("unknown term returned docs")
	}
}

func TestNoAdaptiveStopNaiveRule(t *testing.T) {
	f := buildRankedCommunity()
	docs, st := Ranked(f, f, []string{"gossip"}, Options{K: 5, NoAdaptiveStop: true})
	if len(docs) != 5 {
		t.Fatalf("naive rule should stop at k docs: %d", len(docs))
	}
	if st.StoppedEarly {
		t.Fatal("naive rule must not report adaptive stop")
	}
}

func TestExhaustiveSearch(t *testing.T) {
	f := newFake()
	f.addDoc(0, "both", map[string]int{"x": 1, "y": 1})
	f.addDoc(1, "xonly", map[string]int{"x": 1})
	f.addDoc(2, "boty", map[string]int{"x": 2, "y": 9})
	docs, st := Exhaustive(f, f, []string{"x", "y"}, Options{})
	if len(docs) != 2 {
		t.Fatalf("docs = %v", docs)
	}
	if docs[0].Key != "both" || docs[1].Key != "boty" {
		t.Fatalf("wrong/unsorted docs: %v", docs)
	}
	// Peer 1's filter lacks y: it must not even be contacted.
	if st.PeersContacted != 2 {
		t.Fatalf("contacted %d peers, want 2", st.PeersContacted)
	}
	if docs2, _ := Exhaustive(f, f, nil, Options{}); docs2 != nil {
		t.Fatal("empty exhaustive query")
	}
}

func TestExhaustiveSkipsFailed(t *testing.T) {
	f := newFake()
	f.addDoc(0, "a", map[string]int{"x": 1})
	f.addDoc(1, "b", map[string]int{"x": 1})
	f.fail[0] = true
	docs, _ := Exhaustive(f, f, []string{"x"}, Options{})
	if len(docs) != 1 || docs[0].Key != "b" {
		t.Fatalf("docs = %v", docs)
	}
}

func TestInsertTopK(t *testing.T) {
	var top []ScoredDoc
	mk := func(key string, s float64) ScoredDoc {
		return ScoredDoc{DocResult: DocResult{Key: key}, Score: s}
	}
	if !insertTopK(&top, mk("a", 1), 2) || !insertTopK(&top, mk("b", 3), 2) {
		t.Fatal("initial inserts must contribute")
	}
	if !insertTopK(&top, mk("c", 2), 2) {
		t.Fatal("displacing insert must contribute")
	}
	if insertTopK(&top, mk("d", 0.5), 2) {
		t.Fatal("below-threshold insert contributed")
	}
	if len(top) != 2 || top[0].Key != "b" || top[1].Key != "c" {
		t.Fatalf("top = %v", top)
	}
}

func TestPersistentQueryInitialAndFilterNotify(t *testing.T) {
	f := newFake()
	f.addDoc(0, "existing", map[string]int{"news": 1, "go": 1})
	reg := NewRegistry(f, f)
	var got []string
	_, cancel := reg.Post([]string{"news", "go"}, func(d DocResult) { got = append(got, d.Key) })
	if len(got) != 1 || got[0] != "existing" {
		t.Fatalf("initial evaluation = %v", got)
	}
	// A new doc arrives at peer 1, then its filter change is gossiped.
	f.addDoc(1, "fresh", map[string]int{"news": 2, "go": 1})
	reg.NotifyFilter(1)
	if len(got) != 2 || got[1] != "fresh" {
		t.Fatalf("after filter notify = %v", got)
	}
	// Duplicate notifications must not re-fire.
	reg.NotifyFilter(1)
	if len(got) != 2 {
		t.Fatalf("duplicate fired: %v", got)
	}
	cancel()
	f.addDoc(2, "late", map[string]int{"news": 1, "go": 1})
	reg.NotifyFilter(2)
	if len(got) != 2 {
		t.Fatal("cancelled query fired")
	}
	if reg.Queries() != 0 {
		t.Fatalf("Queries = %d after cancel", reg.Queries())
	}
}

func TestPersistentQueryNotifyDoc(t *testing.T) {
	f := newFake()
	reg := NewRegistry(f, f)
	var got []string
	reg.Post([]string{"a", "b"}, func(d DocResult) { got = append(got, d.Key) })
	reg.NotifyDoc(DocResult{Key: "s1", TermFreqs: map[string]int{"a": 1}})
	if len(got) != 0 {
		t.Fatal("partial match fired")
	}
	reg.NotifyDoc(DocResult{Key: "s2", TermFreqs: map[string]int{"a": 1, "b": 1}})
	if len(got) != 1 || got[0] != "s2" {
		t.Fatalf("got = %v", got)
	}
	reg.NotifyDoc(DocResult{Key: "s2", TermFreqs: map[string]int{"a": 1, "b": 1}})
	if len(got) != 1 {
		t.Fatal("dedupe failed")
	}
}
