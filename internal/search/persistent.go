package search

import (
	"sync"

	"planetp/internal/directory"
)

// PersistentQuery is a standing exhaustive query (Section 5.1): the
// callback fires for every new matching document discovered, either when
// a new Bloom filter arrives (some peer may now have matches) or when a
// matching snippet is published to the brokers. Each document key fires at
// most once per query.
type PersistentQuery struct {
	// Terms is the conjunctive query.
	Terms []string
	// Fn receives each newly discovered match.
	Fn func(DocResult)

	// q is the hash-once prober for Terms, built at registration: a
	// standing query hashes its terms exactly once for its whole life,
	// no matter how many filter notifications re-evaluate it.
	q query

	mu   sync.Mutex
	seen map[string]bool
}

// Registry manages a peer's persistent queries and re-evaluates them as
// news arrives.
type Registry struct {
	mu      sync.Mutex
	queries []*PersistentQuery
	view    FilterView
	fetch   Fetcher
	cache   *IPFCache
}

// NewRegistry returns a registry that evaluates queries against view and
// fetch.
func NewRegistry(view FilterView, fetch Fetcher) *Registry {
	return &Registry{view: view, fetch: fetch}
}

// SetCache attaches the peer's shared IPF/rank cache: the registry
// invalidates it whenever a filter notification arrives, covering views
// that cannot version themselves. Nil detaches.
func (r *Registry) SetCache(c *IPFCache) {
	r.mu.Lock()
	r.cache = c
	r.mu.Unlock()
}

// Post registers a persistent query and immediately evaluates it against
// the current community (so existing matches fire right away). It returns
// the query handle and a cancel function.
func (r *Registry) Post(terms []string, fn func(DocResult)) (*PersistentQuery, func()) {
	q := &PersistentQuery{Terms: terms, Fn: fn, seen: make(map[string]bool)}
	q.q = newQuery(r.view, terms)
	r.mu.Lock()
	r.queries = append(r.queries, q)
	r.mu.Unlock()
	r.evaluate(q, nil)
	cancel := func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		for i, x := range r.queries {
			if x == q {
				r.queries = append(r.queries[:i], r.queries[i+1:]...)
				return
			}
		}
	}
	return q, cancel
}

// Queries returns the number of registered queries.
func (r *Registry) Queries() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.queries)
}

// NotifyFilter re-evaluates all queries against a single peer whose Bloom
// filter just changed (the gossip layer calls this on fresh records).
// Any attached IPFCache is invalidated first: a changed filter moves
// every memoized IPF and ranking.
func (r *Registry) NotifyFilter(peer directory.PeerID) {
	r.mu.Lock()
	qs := append([]*PersistentQuery(nil), r.queries...)
	cache := r.cache
	r.mu.Unlock()
	cache.Invalidate()
	only := &peer
	for _, q := range qs {
		r.evaluate(q, only)
	}
}

// NotifyDoc offers a single document (e.g. a brokered snippet converted to
// a DocResult) to all queries; matching ones fire.
func (r *Registry) NotifyDoc(d DocResult) {
	r.mu.Lock()
	qs := append([]*PersistentQuery(nil), r.queries...)
	r.mu.Unlock()
	for _, q := range qs {
		if !docMatches(d, q.Terms) {
			continue
		}
		q.fire(d)
	}
}

// docMatches reports whether d contains every query term.
func docMatches(d DocResult, terms []string) bool {
	for _, t := range terms {
		if d.TermFreqs[t] <= 0 {
			return false
		}
	}
	return true
}

// fire invokes the callback once per document key.
func (q *PersistentQuery) fire(d DocResult) {
	q.mu.Lock()
	if q.seen[d.Key] {
		q.mu.Unlock()
		return
	}
	q.seen[d.Key] = true
	q.mu.Unlock()
	q.Fn(d)
}

// evaluate runs q's exhaustive search; if only is non-nil, just that peer
// is considered (a targeted re-check after its filter changed).
func (r *Registry) evaluate(q *PersistentQuery, only *directory.PeerID) {
	candidates := r.view.Peers()
	if only != nil {
		candidates = []directory.PeerID{*only}
	}
	for _, id := range candidates {
		if !q.q.containsAll(id) {
			continue
		}
		docs, err := r.fetch.QueryPeerAll(id, q.Terms)
		if err != nil {
			continue
		}
		for _, d := range docs {
			q.fire(d)
		}
	}
}
