package search

import (
	"strings"
	"sync"

	"planetp/internal/metrics"
)

// IPFCache memoizes per-query IPF maps and peer rankings. The local
// ranking step (equations 1 and 3) is a pure function of the directory's
// filter state and the query's term sequence, so repeated queries —
// persistent queries re-evaluated on gossip arrival, query refinement,
// proxy-search fan-in, benchmark sweeps — can skip the peers × terms
// filter sweep entirely until some filter changes.
//
// Entries are keyed by the literal term sequence and stamped with the
// view's version (VersionedView). When the view's version advances every
// entry is dropped on the next lookup; views that cannot version
// themselves must call Invalidate explicitly when filters change (the
// persistent-query Registry does this on every filter notification).
//
// An IPFCache is safe for concurrent use. Cached IPF maps and rankings
// are shared and must be treated as immutable by callers.
type IPFCache struct {
	mu      sync.Mutex
	epoch   uint64 // bumped on every flush (Invalidate or version advance)
	stamped bool   // version is meaningful
	version uint64 // view version the entries were computed at
	entries map[string]rankEntry
}

// rankEntry is one memoized query: its IPF map and peer ranking.
type rankEntry struct {
	ipf   map[string]float64
	ranks []PeerRank
}

// NewIPFCache returns an empty cache.
func NewIPFCache() *IPFCache {
	return &IPFCache{entries: make(map[string]rankEntry)}
}

// Invalidate drops every entry. Nil-safe, so optional wiring can call it
// unconditionally.
func (c *IPFCache) Invalidate() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.entries = make(map[string]rankEntry)
	c.stamped = false
	c.epoch++
	c.mu.Unlock()
}

// Len returns the number of live entries.
func (c *IPFCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// cacheKey identifies a query by its literal term sequence. Order is
// preserved: equation 3 folds IPF weights in term order, and reusing a
// permuted entry could differ in the last float ulp — the cache trades
// hit rate for bit-exact equivalence with the uncached path.
func cacheKey(terms []string) string {
	return strings.Join(terms, "\x00")
}

// IPFRanked returns the query's IPF map and peer ranking, from cache when
// fresh — the memoized equivalent of IPF followed by RankPeers. reg (may
// be nil) receives search_ipf_cache_hits_total / _misses_total.
func (c *IPFCache) IPFRanked(view FilterView, terms []string, reg *metrics.Registry) (map[string]float64, []PeerRank) {
	q := newQuery(view, terms)
	return c.rankFor(&q, reg)
}

// rankFor is IPFRanked over an already-built query prober.
func (c *IPFCache) rankFor(q *query, reg *metrics.Registry) (map[string]float64, []PeerRank) {
	key := cacheKey(q.terms)
	var ver uint64
	var versioned bool
	if vv, ok := q.view.(VersionedView); ok {
		ver, versioned = vv.ViewVersion()
	}
	c.mu.Lock()
	if versioned && (!c.stamped || c.version != ver) {
		// The view moved on: every entry is stale.
		c.entries = make(map[string]rankEntry, len(c.entries))
		c.version = ver
		c.stamped = true
		c.epoch++
	}
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		reg.Counter("search_ipf_cache_hits_total").Inc()
		return e.ipf, e.ranks
	}
	epoch := c.epoch
	c.mu.Unlock()
	reg.Counter("search_ipf_cache_misses_total").Inc()

	// Compute outside the lock: sweeps can be long and concurrent
	// searches for different terms should overlap.
	peers := q.view.Peers()
	ipf := q.ipf(peers)
	ranks := q.rank(peers, ipf)

	c.mu.Lock()
	// Store only if no flush (invalidation or version advance) happened
	// while we swept; a stale store would outlive its truth.
	if c.epoch == epoch {
		c.entries[key] = rankEntry{ipf: ipf, ranks: ranks}
	}
	c.mu.Unlock()
	return ipf, ranks
}
