package search

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"planetp/internal/directory"
	"planetp/internal/metrics"
)

// syncFake wraps a fakeCommunity so the concurrent fan-out can use it: the
// mutable bookkeeping is mutex-guarded, per-peer artificial delays simulate
// slow links, and the ContextFetcher methods honor cancellation so
// Options.PeerTimeout can be exercised.
type syncFake struct {
	*fakeCommunity
	mu    sync.Mutex
	delay map[directory.PeerID]time.Duration
}

func newSyncFake(f *fakeCommunity) *syncFake {
	return &syncFake{fakeCommunity: f, delay: map[directory.PeerID]time.Duration{}}
}

func (s *syncFake) QueryPeer(id directory.PeerID, terms []string) ([]DocResult, error) {
	if d := s.delay[id]; d > 0 {
		time.Sleep(d)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fakeCommunity.QueryPeer(id, terms)
}

func (s *syncFake) QueryPeerAll(id directory.PeerID, terms []string) ([]DocResult, error) {
	if d := s.delay[id]; d > 0 {
		time.Sleep(d)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fakeCommunity.QueryPeerAll(id, terms)
}

func (s *syncFake) wait(ctx context.Context, id directory.PeerID) error {
	d := s.delay[id]
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *syncFake) QueryPeerContext(ctx context.Context, id directory.PeerID, terms []string) ([]DocResult, error) {
	if err := s.wait(ctx, id); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fakeCommunity.QueryPeer(id, terms)
}

func (s *syncFake) QueryPeerAllContext(ctx context.Context, id directory.PeerID, terms []string) ([]DocResult, error) {
	if err := s.wait(ctx, id); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fakeCommunity.QueryPeerAll(id, terms)
}

// buildDeterminismFixture seeds a community with skewed term placement,
// duplicate document keys replicated across peers, and failing peers — the
// cases where a sloppy concurrent merge would diverge from the sequential
// sweep.
func buildDeterminismFixture(seed int64) *syncFake {
	f := newFake()
	rng := rand.New(rand.NewSource(seed))
	for p := directory.PeerID(0); p < 30; p++ {
		for d := 0; d < 4; d++ {
			freqs := map[string]int{"alpha": rng.Intn(5) + 1}
			if rng.Intn(2) == 0 {
				freqs["beta"] = rng.Intn(3) + 1
			}
			if rng.Intn(5) == 0 {
				freqs["gamma"] = rng.Intn(4) + 1
			}
			key := fmt.Sprintf("p%d-d%d", p, d)
			if rng.Intn(4) == 0 {
				// Replicated document: the same key lives on several
				// peers; only the first contact in rank order may count.
				key = fmt.Sprintf("shared-%d", rng.Intn(8))
			}
			f.addDoc(p, key, freqs)
		}
		if rng.Intn(6) == 0 {
			f.fail[p] = true
		}
	}
	return newSyncFake(f)
}

// TestConcurrentRankedDeterminism: with any Concurrency setting, Ranked
// must return exactly the sequential result — same documents, same scores,
// same Stats — because responses are merged in rank order.
func TestConcurrentRankedDeterminism(t *testing.T) {
	terms := []string{"alpha", "beta", "gamma"}
	for _, seed := range []int64{1, 7, 42} {
		f := buildDeterminismFixture(seed)
		wantDocs, wantSt := Ranked(f, f, terms, Options{K: 12, GroupSize: 5})
		for _, conc := range []int{2, 4, 16} {
			f.fakeCommunity.queried = nil
			gotDocs, gotSt := Ranked(f, f, terms, Options{K: 12, GroupSize: 5, Concurrency: conc})
			if !reflect.DeepEqual(gotDocs, wantDocs) {
				t.Fatalf("seed %d conc %d: docs diverge from sequential\n got %v\nwant %v",
					seed, conc, gotDocs, wantDocs)
			}
			if gotSt != wantSt {
				t.Fatalf("seed %d conc %d: stats %+v, want %+v", seed, conc, gotSt, wantSt)
			}
		}
	}
}

// TestConcurrentExhaustiveDeterminism mirrors the ranked test for the
// conjunctive path.
func TestConcurrentExhaustiveDeterminism(t *testing.T) {
	terms := []string{"alpha", "beta"}
	f := buildDeterminismFixture(3)
	wantDocs, wantSt := Exhaustive(f, f, terms, Options{})
	gotDocs, gotSt := Exhaustive(f, f, terms, Options{Concurrency: 8})
	if !reflect.DeepEqual(gotDocs, wantDocs) {
		t.Fatalf("concurrent exhaustive diverges:\n got %v\nwant %v", gotDocs, wantDocs)
	}
	if gotSt != wantSt {
		t.Fatalf("stats %+v, want %+v", gotSt, wantSt)
	}
}

// TestConcurrentRankedSlowFlakyPeers exercises the fan-out under the race
// detector with slow and failing peers mixed into one group.
func TestConcurrentRankedSlowFlakyPeers(t *testing.T) {
	f := buildDeterminismFixture(9)
	for p := directory.PeerID(0); p < 30; p += 3 {
		f.delay[p] = time.Duration(p%5) * time.Millisecond
	}
	terms := []string{"alpha", "beta"}
	want, wantSt := Ranked(f, f, terms, Options{K: 10, GroupSize: 8})
	got, gotSt := Ranked(f, f, terms, Options{K: 10, GroupSize: 8, Concurrency: 8})
	if !reflect.DeepEqual(got, want) || gotSt != wantSt {
		t.Fatalf("slow/flaky concurrent run diverges: %+v vs %+v", gotSt, wantSt)
	}
}

// TestPeerTimeout: with a PeerTimeout in force and a context-aware
// fetcher, a slow peer counts as unreachable instead of stalling the
// search; without the timeout its documents arrive.
func TestPeerTimeout(t *testing.T) {
	f := newFake()
	f.addDoc(0, "slow-doc", map[string]int{"x": 3})
	f.addDoc(1, "fast-doc", map[string]int{"x": 2})
	s := newSyncFake(f)
	s.delay[0] = 200 * time.Millisecond

	docs, _ := Ranked(s, s, []string{"x"}, Options{K: 4, GroupSize: 2, Concurrency: 2,
		PeerTimeout: 5 * time.Millisecond})
	for _, d := range docs {
		if d.Key == "slow-doc" {
			t.Fatal("timed-out peer's document returned")
		}
	}
	if len(docs) != 1 || docs[0].Key != "fast-doc" {
		t.Fatalf("docs = %v", docs)
	}

	s.delay[0] = time.Millisecond
	docs, _ = Ranked(s, s, []string{"x"}, Options{K: 4, GroupSize: 2, Concurrency: 2,
		PeerTimeout: time.Second})
	if len(docs) != 2 {
		t.Fatalf("within-deadline peer dropped: %v", docs)
	}
}

// TestIPFCacheHitMiss: cached results are the exact objects the uncached
// path computes, hit/miss counters track lookups, and term order is part
// of the key (score bit-exactness beats hit rate).
func TestIPFCacheHitMiss(t *testing.T) {
	f := buildRankedCommunity()
	c := NewIPFCache()
	reg := metrics.NewRegistry()
	terms := []string{"gossip", "bloom"}

	ipf1, r1 := c.IPFRanked(f, terms, reg)
	ipf2, r2 := c.IPFRanked(f, terms, reg)
	wantIPF := IPF(f, terms)
	wantRanks := RankPeers(f, terms, wantIPF)
	if !reflect.DeepEqual(ipf1, wantIPF) || !reflect.DeepEqual(r1, wantRanks) {
		t.Fatalf("cached compute differs from direct path")
	}
	if !reflect.DeepEqual(ipf2, ipf1) || !reflect.DeepEqual(r2, r1) {
		t.Fatalf("second lookup differs")
	}
	s := reg.Snapshot()
	if s.Get("search_ipf_cache_hits_total") != 1 || s.Get("search_ipf_cache_misses_total") != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1",
			s.Get("search_ipf_cache_hits_total"), s.Get("search_ipf_cache_misses_total"))
	}

	// Permuted terms are a distinct entry: reusing one would fold IPF
	// weights in a different order.
	c.IPFRanked(f, []string{"bloom", "gossip"}, reg)
	if c.Len() != 2 {
		t.Fatalf("Len = %d after permuted query, want 2", c.Len())
	}

	c.Invalidate()
	if c.Len() != 0 {
		t.Fatalf("Len = %d after Invalidate", c.Len())
	}
	c.IPFRanked(f, terms, reg)
	if got := reg.Snapshot().Get("search_ipf_cache_misses_total"); got != 3 {
		t.Fatalf("misses = %d after invalidate, want 3", got)
	}
}

// versionedFake adds a settable view version to fakeCommunity.
type versionedFake struct {
	*fakeCommunity
	ver uint64
}

func (v *versionedFake) ViewVersion() (uint64, bool) { return v.ver, true }

// TestIPFCacheVersionFlush: a version advance drops every entry on the
// next lookup without an explicit Invalidate.
func TestIPFCacheVersionFlush(t *testing.T) {
	v := &versionedFake{fakeCommunity: buildRankedCommunity(), ver: 1}
	c := NewIPFCache()
	reg := metrics.NewRegistry()
	terms := []string{"gossip"}

	c.IPFRanked(v, terms, reg)
	c.IPFRanked(v, terms, reg)
	if got := reg.Snapshot().Get("search_ipf_cache_hits_total"); got != 1 {
		t.Fatalf("hits = %d before version bump", got)
	}

	v.ver = 2 // a filter changed somewhere
	c.IPFRanked(v, terms, reg)
	s := reg.Snapshot()
	if s.Get("search_ipf_cache_misses_total") != 2 {
		t.Fatalf("version bump did not flush: misses = %d", s.Get("search_ipf_cache_misses_total"))
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d after re-fill", c.Len())
	}
}

// invalidatingView fires a cache invalidation from inside the compute
// phase (Peers is called outside the cache lock), simulating a filter
// change racing a miss.
type invalidatingView struct {
	*fakeCommunity
	cache *IPFCache
	fired bool
}

func (v *invalidatingView) Peers() []directory.PeerID {
	if !v.fired {
		v.fired = true
		v.cache.Invalidate()
	}
	return v.fakeCommunity.Peers()
}

// TestIPFCacheRacingInvalidate: an invalidation arriving while a miss is
// being computed must win — the late store is discarded, not resurrected.
func TestIPFCacheRacingInvalidate(t *testing.T) {
	c := NewIPFCache()
	v := &invalidatingView{fakeCommunity: buildRankedCommunity(), cache: c}
	ipf, ranks := c.IPFRanked(v, []string{"gossip"}, nil)
	if len(ipf) == 0 || len(ranks) == 0 {
		t.Fatal("racing invalidate corrupted the returned results")
	}
	if c.Len() != 0 {
		t.Fatalf("stale entry stored past invalidation: Len = %d", c.Len())
	}
}

// TestRegistryCacheInvalidation: a filter notification through the
// persistent-query registry invalidates the attached cache (the unversioned
// fallback path).
func TestRegistryCacheInvalidation(t *testing.T) {
	f := newFake()
	f.addDoc(0, "d0", map[string]int{"news": 1})
	reg := NewRegistry(f, f)
	c := NewIPFCache()
	reg.SetCache(c)

	c.IPFRanked(f, []string{"news"}, nil)
	if c.Len() != 1 {
		t.Fatalf("Len = %d after warm-up", c.Len())
	}
	reg.NotifyFilter(0)
	if c.Len() != 0 {
		t.Fatal("NotifyFilter did not invalidate the IPF cache")
	}
}

// TestRankedWithCacheMatchesUncached: the full search result is identical
// with and without a cache, on both cold and warm lookups.
func TestRankedWithCacheMatchesUncached(t *testing.T) {
	f := buildDeterminismFixture(11)
	terms := []string{"alpha", "beta"}
	want, wantSt := Ranked(f, f, terms, Options{K: 8, GroupSize: 3})
	cache := NewIPFCache()
	for pass := 0; pass < 2; pass++ { // pass 0 fills, pass 1 hits
		got, gotSt := Ranked(f, f, terms, Options{K: 8, GroupSize: 3, Cache: cache})
		if !reflect.DeepEqual(got, want) || gotSt != wantSt {
			t.Fatalf("pass %d: cached search diverges", pass)
		}
	}
	if cache.Len() != 1 {
		t.Fatalf("cache Len = %d", cache.Len())
	}
}

// TestMergedViewDeclinesDigests: a wrapper over a base without digest
// support must not be treated as digest-capable even though it
// structurally satisfies DigestView.
func TestMergedViewDeclinesDigests(t *testing.T) {
	f := buildRankedCommunity() // fakeCommunity: Contains only
	mv := NewMergedView(f, 2)
	q := newQuery(mv, []string{"gossip"})
	if q.dv != nil {
		t.Fatal("newQuery accepted digest probing from a non-digest base")
	}
	if _, ok := mv.ViewVersion(); ok {
		t.Fatal("MergedView invented a version for an unversioned base")
	}
	// The fallback path still answers correctly through group semantics.
	if !q.containsAll(0) {
		t.Fatal("fallback containsAll failed")
	}
}
