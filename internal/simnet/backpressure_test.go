package simnet

import (
	"testing"
	"time"

	"planetp/internal/directory"
	"planetp/internal/gossip"
)

// bigMsg builds a message that takes the given seconds to cross a modem
// link (one direction). The record is about the receiver itself, so the
// receiver charges the link but never re-rumors it (nodes ignore gossip
// about themselves) — keeping these tests about link mechanics only.
func bigMsg(seconds float64, about directory.PeerID) *gossip.Message {
	bytes := int32(float64(Modem) / 8 * seconds)
	return &gossip.Message{Type: gossip.MsgRumor,
		Updates: []directory.Record{{ID: about, DiffSize: bytes}}}
}

func TestRecvBacklogRejectsSends(t *testing.T) {
	params := DefaultParams()
	params.RecvBacklog = 10 * time.Second
	s := New(3, gossip.Config{}, params, 1)
	a := s.AddPeer(LAN, 0, 0)
	b := s.AddPeer(Modem, 0, 0)
	s.AddPeer(LAN, 0, 0)

	// Stuff b's inbound link well past the backlog threshold.
	if err := a.Send(b.ID, bigMsg(30, b.ID)); err != nil {
		t.Fatalf("first send should be accepted: %v", err)
	}
	// Now b's link is busy ~30s; further sends look like timeouts.
	if err := a.Send(b.ID, bigMsg(1, b.ID)); err == nil {
		t.Fatal("send to backlogged peer should fail")
	}
	if s.FailedSends != 1 {
		t.Fatalf("FailedSends = %d", s.FailedSends)
	}
	// After the queue drains, sends work again.
	s.Run(2 * time.Minute)
	if err := a.Send(b.ID, bigMsg(0.1, b.ID)); err != nil {
		t.Fatalf("post-drain send failed: %v", err)
	}
}

func TestRecvBacklogDisabled(t *testing.T) {
	params := DefaultParams()
	params.RecvBacklog = 0 // disabled
	s := New(2, gossip.Config{}, params, 1)
	a := s.AddPeer(LAN, 0, 0)
	b := s.AddPeer(Modem, 0, 0)
	for i := 0; i < 5; i++ {
		if err := a.Send(b.ID, bigMsg(30, b.ID)); err != nil {
			t.Fatalf("send %d failed with backlog disabled: %v", i, err)
		}
	}
}

func TestSendBacklogDefersTick(t *testing.T) {
	params := DefaultParams()
	params.SendBacklog = 5 * time.Second
	params.RecvBacklog = 0
	s := New(2, gossip.Config{}, params, 1)
	a := s.AddPeer(Modem, 0, 0)
	b := s.AddPeer(LAN, 0, 0)
	_ = b
	s.Run(time.Second)

	// Saturate a's uplink for ~60 modem-seconds.
	if err := a.Send(b.ID, bigMsg(60, b.ID)); err != nil {
		t.Fatal(err)
	}
	roundsBefore := a.Node.Stats().Rounds
	// Over the next 30 s, a's gossip rounds must be deferred (its link
	// is hopelessly backlogged).
	s.Run(s.Now() + 30*time.Second)
	roundsDuring := a.Node.Stats().Rounds - roundsBefore
	if roundsDuring > 1 {
		t.Fatalf("backlogged peer ran %d gossip rounds; expected deferral", roundsDuring)
	}
	// Once drained, rounds resume.
	s.Run(s.Now() + 3*time.Minute)
	if a.Node.Stats().Rounds == roundsBefore {
		t.Fatal("rounds never resumed after drain")
	}
}

func TestBackpressureBoundsQueues(t *testing.T) {
	// A modem peer in a busy LAN community must not accumulate
	// unbounded in-flight data: with backpressure on, the modem's
	// linkBusyUntil horizon stays within RecvBacklog + one transfer.
	params := DefaultParams()
	s := New(20, gossip.Config{}, params, 3)
	BuildCommunity(s, 20, []MixFraction{{Modem, 0.1}, {LAN, 0.9}}, 16000, 16000)
	s.Run(time.Second)
	// Everyone publishes (a storm of 16KB rumors).
	for _, p := range s.Peers() {
		p.Node.Publish(16000, 16000, nil)
	}
	s.Run(s.Now() + 10*time.Minute)
	for _, p := range s.Peers() {
		if p.Speed != Modem {
			continue
		}
		horizon := p.linkBusyUntil - s.Now()
		if horizon > params.RecvBacklog+5*time.Minute {
			t.Fatalf("modem peer %d queue horizon %v despite backpressure", p.ID, horizon)
		}
	}
}
