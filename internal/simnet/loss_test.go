package simnet

import (
	"testing"
	"time"

	"planetp/internal/directory"
	"planetp/internal/gossip"
)

// A message in flight to a peer that goes off-line is lost (the paper's
// model: abrupt departures lose whatever was addressed to them), and the
// system recovers via the normal rejoin path.
func TestInFlightMessageLostOnDeparture(t *testing.T) {
	s := New(2, gossip.Config{}, DefaultParams(), 4)
	a := s.AddPeer(LAN, 0, 0)
	b := s.AddPeer(LAN, 0, 0)
	delivered := 0
	s.AfterDeliver = func(*Peer, directory.PeerID, *gossip.Message) { delivered++ }

	if err := a.Send(b.ID, &gossip.Message{Type: gossip.MsgAERequest, From: a.ID}); err != nil {
		t.Fatal(err)
	}
	// The message is scheduled but b departs before it lands.
	b.GoOffline()
	s.Run(time.Minute)
	if delivered != 0 {
		t.Fatalf("message delivered to departed peer (%d)", delivered)
	}
	// After rejoin, fresh messages flow again.
	b.GoOnline(0)
	if err := a.Send(b.ID, &gossip.Message{Type: gossip.MsgAERequest, From: a.ID}); err != nil {
		t.Fatal(err)
	}
	s.Run(s.Now() + time.Minute)
	if delivered == 0 {
		t.Fatal("no delivery after rejoin")
	}
}

// Rejoin announcements must supersede: epoch bumps on every GoOnline.
func TestRepeatedChurnBumpsEpochs(t *testing.T) {
	s := New(2, gossip.Config{}, DefaultParams(), 4)
	p := s.AddPeer(LAN, 0, 0)
	s.AddPeer(LAN, 0, 0)
	for i := 0; i < 5; i++ {
		p.GoOffline()
		p.GoOnline(0)
	}
	if got := p.Node.SelfRecord().Ver.Epoch; got != 6 {
		t.Fatalf("epoch after 5 rejoins = %d, want 6", got)
	}
}

// The timeline accounting must cover every sent byte.
func TestTimelineSumsToTotal(t *testing.T) {
	const n = 30
	s := New(n, gossip.Config{}, DefaultParams(), 8)
	BuildCommunity(s, n, UniformProfile(DSL), 1000, 1000)
	s.Run(time.Second)
	s.Peers()[0].Node.Publish(1000, 2000, nil)
	s.Run(10 * time.Minute)
	var sum int64
	for _, b := range s.BandwidthTimeline() {
		sum += b
	}
	if sum != s.TotalBytes {
		t.Fatalf("timeline sum %d != TotalBytes %d", sum, s.TotalBytes)
	}
}
