package simnet

import (
	"testing"
	"time"

	"planetp/internal/directory"
	"planetp/internal/gossip"
)

func TestEventOrdering(t *testing.T) {
	s := New(0, gossip.Config{}, DefaultParams(), 1)
	var order []int
	s.At(2*time.Second, func() { order = append(order, 2) })
	s.At(1*time.Second, func() { order = append(order, 1) })
	s.At(1*time.Second, func() { order = append(order, 10) }) // FIFO at same time
	s.At(3*time.Second, func() { order = append(order, 3) })
	s.Run(10 * time.Second)
	want := []int{1, 10, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if s.Now() != 10*time.Second {
		t.Fatalf("Now = %v", s.Now())
	}
}

func TestRunUntil(t *testing.T) {
	s := New(0, gossip.Config{}, DefaultParams(), 1)
	hit := false
	s.At(time.Second, func() { hit = true })
	s.At(5*time.Second, func() { t.Fatal("should have stopped") })
	ok := s.RunUntil(time.Minute, func() bool { return hit })
	if !ok {
		t.Fatal("predicate not reached")
	}
}

func TestClassMapping(t *testing.T) {
	if Class(Modem) != directory.Slow {
		t.Error("modem should be slow")
	}
	for _, s := range []LinkSpeed{DSL, Cable, Eth10, LAN} {
		if Class(s) != directory.Fast {
			t.Errorf("%v should be fast", s)
		}
	}
}

func TestBuildCommunityProfile(t *testing.T) {
	s := New(100, gossip.Config{}, DefaultParams(), 7)
	BuildCommunity(s, 100, MixProfile(), 3000, 16000)
	counts := map[LinkSpeed]int{}
	for _, p := range s.Peers() {
		counts[p.Speed]++
	}
	if counts[Modem] != 9 || counts[DSL] != 21 || counts[Cable] != 50 ||
		counts[Eth10] != 16 || counts[LAN] != 4 {
		t.Fatalf("profile mismatch: %v", counts)
	}
	// Converged start: everyone knows everyone, no active rumors.
	for _, p := range s.Peers() {
		if p.Node.Directory().NumKnown() != 100 {
			t.Fatalf("peer %d knows %d", p.ID, p.Node.Directory().NumKnown())
		}
		if p.Node.ActiveRumors() != 0 {
			t.Fatalf("peer %d has %d active rumors at start", p.ID, p.Node.ActiveRumors())
		}
	}
}

// The core end-to-end check: one peer publishes a new Bloom filter in a
// converged LAN community; the rumor must reach every peer well within the
// experiment horizon, and the bandwidth must be accounted.
func TestPropagationReachesEveryone(t *testing.T) {
	const n = 60
	s := New(n, gossip.Config{}, DefaultParams(), 42)
	BuildCommunity(s, n, UniformProfile(LAN), 3000, 3000)
	s.Run(time.Second) // settle timers

	src := s.Peers()[0]
	src.Node.Publish(3000, 6000, nil)
	wantVer := src.Node.SelfRecord().Ver

	knows := func() bool {
		for _, p := range s.Peers() {
			if p.Node.Directory().VersionOf(src.ID).Less(wantVer) {
				return false
			}
		}
		return true
	}
	if !s.RunUntil(30*time.Minute, knows) {
		t.Fatal("rumor did not reach everyone within 30 simulated minutes")
	}
	if s.Now() > 10*time.Minute {
		t.Fatalf("propagation took %v; paper-scale is a few minutes", s.Now())
	}
	if s.TotalBytes == 0 || s.TotalMsgs == 0 {
		t.Fatal("no bandwidth accounted")
	}
	if len(s.BandwidthTimeline()) == 0 {
		t.Fatal("no bandwidth timeline")
	}
}

// Convergence must also hold without the partial anti-entropy (pure
// rumor + periodic AE), just more slowly/variably.
func TestPropagationWithoutPartialAE(t *testing.T) {
	const n = 40
	s := New(n, gossip.Config{PiggybackCount: -1}, DefaultParams(), 43)
	BuildCommunity(s, n, UniformProfile(LAN), 3000, 3000)
	s.Run(time.Second)
	src := s.Peers()[0]
	src.Node.Publish(3000, 6000, nil)
	wantVer := src.Node.SelfRecord().Ver
	knows := func() bool {
		for _, p := range s.Peers() {
			if p.Node.Directory().VersionOf(src.ID).Less(wantVer) {
				return false
			}
		}
		return true
	}
	if !s.RunUntil(2*time.Hour, knows) {
		t.Fatal("no convergence without partial AE")
	}
}

// AE-only baseline must converge too (it is the LAN-AE comparison).
func TestPropagationAEOnly(t *testing.T) {
	const n = 30
	s := New(n, gossip.Config{Mode: gossip.ModeAEOnly}, DefaultParams(), 44)
	BuildCommunity(s, n, UniformProfile(LAN), 3000, 3000)
	s.Run(time.Second)
	src := s.Peers()[0]
	src.Node.Publish(3000, 6000, nil)
	wantVer := src.Node.SelfRecord().Ver
	knows := func() bool {
		for _, p := range s.Peers() {
			if p.Node.Directory().VersionOf(src.ID).Less(wantVer) {
				return false
			}
		}
		return true
	}
	if !s.RunUntil(2*time.Hour, knows) {
		t.Fatal("AE-only did not converge")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (time.Duration, int64) {
		const n = 30
		s := New(n, gossip.Config{}, DefaultParams(), 99)
		BuildCommunity(s, n, UniformProfile(DSL), 3000, 3000)
		s.Run(time.Second)
		src := s.Peers()[0]
		src.Node.Publish(3000, 6000, nil)
		wantVer := src.Node.SelfRecord().Ver
		s.RunUntil(time.Hour, func() bool {
			for _, p := range s.Peers() {
				if p.Node.Directory().VersionOf(src.ID).Less(wantVer) {
					return false
				}
			}
			return true
		})
		return s.Now(), s.TotalBytes
	}
	t1, b1 := run()
	t2, b2 := run()
	if t1 != t2 || b1 != b2 {
		t.Fatalf("non-deterministic: (%v,%d) vs (%v,%d)", t1, b1, t2, b2)
	}
}

func TestOfflinePeerLosesAndRejoins(t *testing.T) {
	const n = 20
	s := New(n, gossip.Config{}, DefaultParams(), 5)
	BuildCommunity(s, n, UniformProfile(LAN), 1000, 1000)
	s.Run(time.Second)

	victim := s.Peers()[7]
	victim.GoOffline()
	if s.NumOnline() != n-1 {
		t.Fatalf("NumOnline = %d", s.NumOnline())
	}

	// Publish elsewhere; victim must not learn it while offline.
	src := s.Peers()[0]
	src.Node.Publish(1000, 2000, nil)
	wantVer := src.Node.SelfRecord().Ver
	s.Run(s.Now() + 10*time.Minute)
	if !victim.Node.Directory().VersionOf(src.ID).Less(wantVer) {
		t.Fatal("offline peer learned a rumor")
	}

	// Rejoin: the victim announces itself and catches up via gossip.
	victim.GoOnline(0)
	epoch := victim.Node.SelfRecord().Ver.Epoch
	if epoch != 2 {
		t.Fatalf("rejoin epoch = %d", epoch)
	}
	caughtUp := func() bool {
		return !victim.Node.Directory().VersionOf(src.ID).Less(wantVer)
	}
	if !s.RunUntil(s.Now()+30*time.Minute, caughtUp) {
		t.Fatal("rejoined peer did not catch up")
	}
	// And the community must learn the victim's new epoch.
	rejoinKnown := func() bool {
		for _, p := range s.Peers() {
			if p.Node.Directory().VersionOf(victim.ID).Epoch < 2 {
				return false
			}
		}
		return true
	}
	if !s.RunUntil(s.Now()+30*time.Minute, rejoinKnown) {
		t.Fatal("rejoin not propagated")
	}
}

func TestJoinViaSeed(t *testing.T) {
	const n = 16
	s := New(n+1, gossip.Config{}, DefaultParams(), 6)
	BuildCommunity(s, n, UniformProfile(LAN), 1000, 1000)
	s.Run(time.Second)

	// A new peer joins knowing only peer 0.
	joiner := s.AddPeer(LAN, 1000, 1000, 0)
	if joiner.Node.Directory().NumKnown() != 2 {
		t.Fatalf("joiner knows %d records, want 2 (self+seed)", joiner.Node.Directory().NumKnown())
	}
	full := func() bool {
		if joiner.Node.Directory().NumKnown() != n+1 {
			return false
		}
		for _, p := range s.Peers()[:n] {
			if p.Node.Directory().VersionOf(joiner.ID).IsZero() {
				return false
			}
		}
		return true
	}
	if !s.RunUntil(s.Now()+time.Hour, full) {
		t.Fatalf("join did not converge: joiner knows %d, community awareness incomplete",
			joiner.Node.Directory().NumKnown())
	}
}

func TestSlowLinkSlowsTransfer(t *testing.T) {
	// Directly compare the simulated delivery time of one message over
	// modem vs LAN.
	deliver := func(speed LinkSpeed) time.Duration {
		s := New(2, gossip.Config{}, Params{CPUTime: 0, Latency: 0}, 1)
		a := s.AddPeer(speed, 0, 0)
		b := s.AddPeer(speed, 0, 0)
		_ = b
		var at time.Duration
		msg := &gossip.Message{Type: gossip.MsgRumor, From: a.ID,
			Updates: []directory.Record{{ID: a.ID, DiffSize: 56000 / 8}}}
		s.AfterDeliver = func(to *Peer, from directory.PeerID, m *gossip.Message) {
			if m == msg && at == 0 {
				at = s.Now()
			}
		}
		if err := a.Send(1, msg); err != nil {
			t.Fatal(err)
		}
		s.Run(time.Hour)
		return at
	}
	slow := deliver(Modem)
	fast := deliver(LAN)
	if slow <= fast {
		t.Fatalf("modem (%v) not slower than LAN (%v)", slow, fast)
	}
	// 7053 bytes over 56kb/s through two store-and-forward hops ≈ 2s.
	if slow < 1500*time.Millisecond || slow > 4*time.Second {
		t.Fatalf("modem transfer = %v, expected ≈2s", slow)
	}
}

func TestSendToOfflineFails(t *testing.T) {
	s := New(2, gossip.Config{}, DefaultParams(), 1)
	a := s.AddPeer(LAN, 0, 0)
	b := s.AddPeer(LAN, 0, 0)
	b.GoOffline()
	err := a.Send(b.ID, &gossip.Message{Type: gossip.MsgAERequest, From: a.ID})
	if err == nil {
		t.Fatal("send to offline peer should fail")
	}
	if s.FailedSends != 1 {
		t.Fatalf("FailedSends = %d", s.FailedSends)
	}
}

func TestCapacityEnforced(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on exceeding capacity")
		}
	}()
	s := New(1, gossip.Config{}, DefaultParams(), 1)
	s.AddPeer(LAN, 0, 0)
	s.AddPeer(LAN, 0, 0)
}
