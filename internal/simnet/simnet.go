// Package simnet is a deterministic discrete-event network simulator for
// PlanetP's gossiping experiments (Section 7.2). It models a community of
// peers with heterogeneous link speeds; message transfer time is
// store-and-forward through both endpoints' links (so a slow peer is slow
// both to send and to receive, and concurrent transfers serialize on each
// peer's link), plus a propagation latency and a per-message CPU cost
// (Table 2: 5 ms).
//
// Time is purely virtual; nothing in this package reads the wall clock,
// and every random choice comes from seeded generators, so runs are
// reproducible bit-for-bit.
package simnet

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"planetp/internal/directory"
	"planetp/internal/faultnet"
	"planetp/internal/gossip"
	"planetp/internal/metrics"
)

// LinkSpeed is a link's bandwidth in bits per second.
type LinkSpeed float64

// The link classes used across the paper's experiments.
const (
	// Modem is 56 Kb/s dial-up.
	Modem LinkSpeed = 56e3
	// DSL is 512 Kb/s.
	DSL LinkSpeed = 512e3
	// Cable is 5 Mb/s.
	Cable LinkSpeed = 5e6
	// Eth10 is 10 Mb/s.
	Eth10 LinkSpeed = 10e6
	// LAN is 45 Mb/s (T3), the paper's "LAN" scenario.
	LAN LinkSpeed = 45e6
)

// Class maps a link speed to the bandwidth-aware gossiping class: Fast is
// 512 Kb/s or better (Section 7.2).
func Class(s LinkSpeed) directory.Class {
	if s >= DSL {
		return directory.Fast
	}
	return directory.Slow
}

// MixFraction is one slice of a heterogeneous community profile.
type MixFraction struct {
	Speed LinkSpeed
	Frac  float64
}

// MixProfile is the Gnutella/Napster-derived mixture the paper uses
// (measurements by Saroiu et al.): 9% modem, 21% DSL, 50% cable, 16%
// 10 Mb/s, 4% 45 Mb/s.
func MixProfile() []MixFraction {
	return []MixFraction{
		{Modem, 0.09}, {DSL, 0.21}, {Cable, 0.50}, {Eth10, 0.16}, {LAN, 0.04},
	}
}

// UniformProfile gives every peer the same speed.
func UniformProfile(s LinkSpeed) []MixFraction {
	return []MixFraction{{s, 1.0}}
}

// Params are the physical constants of the simulated network.
type Params struct {
	// CPUTime is the per-message processing cost (Table 2: 5 ms).
	CPUTime time.Duration
	// Latency is the one-way propagation delay added to every message.
	Latency time.Duration
	// SendBacklog defers a peer's gossip round while its own link still
	// has this much transmit queue (TCP backpressure on the sender).
	SendBacklog time.Duration
	// RecvBacklog makes sends to a peer whose link is backlogged this
	// far fail like a connection timeout; the sender then applies the
	// protocol's normal failed-contact handling (marks it off-line
	// until next heard from). This models an overloaded peer being
	// indistinguishable from a dead one.
	RecvBacklog time.Duration
}

// DefaultParams returns Table 2's constants with a modest WAN latency and
// backpressure thresholds of one/several gossip intervals.
func DefaultParams() Params {
	return Params{
		CPUTime: 5 * time.Millisecond, Latency: 40 * time.Millisecond,
		SendBacklog: 60 * time.Second, RecvBacklog: 150 * time.Second,
	}
}

// event is one scheduled callback.
type event struct {
	at  time.Duration
	seq uint64 // FIFO tiebreak for determinism
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Sim is the simulation engine plus the simulated community.
type Sim struct {
	now    time.Duration
	events eventHeap
	seq    uint64
	rng    *rand.Rand
	seed   int64

	params   Params
	cfg      gossip.Config
	capacity int
	peers    []*Peer

	// Accounting.
	TotalBytes  int64
	TotalMsgs   int64
	FailedSends int64
	bwTimeline  []int64 // bytes sent, bucketed per simulated second
	onlineCount int

	m simMetrics

	// faults, when set, injects drops/dups/delays/dial failures and
	// scripted partitions into every Send (see SetFaults).
	faults *faultnet.Plan

	// Hooks for experiment harnesses (may be nil).
	AfterDeliver   func(to *Peer, from directory.PeerID, m *gossip.Message)
	OnOnlineChange func(p *Peer, online bool)
}

// simMetrics holds the simulator's registry instruments, resolved from
// the gossip config's registry at New (all nil — a no-op — without one).
type simMetrics struct {
	bytes        *metrics.Counter
	msgs         *metrics.Counter
	failedSends  *metrics.Counter
	queueDelayMS *metrics.Histogram
}

// queueDelayBounds bucket per-message link queueing delay in ms.
var queueDelayBounds = []int64{1, 5, 10, 50, 100, 500, 1000, 5000, 10000, 60000}

func newSimMetrics(r *metrics.Registry) simMetrics {
	return simMetrics{
		bytes:        r.Counter("simnet_bytes_total"),
		msgs:         r.Counter("simnet_msgs_total"),
		failedSends:  r.Counter("simnet_failed_sends_total"),
		queueDelayMS: r.Histogram("simnet_queue_delay_ms", queueDelayBounds),
	}
}

// New creates a simulation with the given community capacity (id space),
// gossip configuration, physical parameters, and seed. Peers are added
// with AddPeer. If cfg.Metrics is set, the simulator publishes its wire
// accounting (simnet_* names) to the same registry the nodes use.
func New(capacity int, cfg gossip.Config, params Params, seed int64) *Sim {
	cfg = cfg.WithDefaults() // the sim charges WireSize with these Sizes
	return &Sim{
		rng:      rand.New(rand.NewSource(seed)),
		seed:     seed,
		params:   params,
		cfg:      cfg,
		capacity: capacity,
		peers:    make([]*Peer, 0, capacity),
		m:        newSimMetrics(cfg.Metrics),
	}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// SetFaults mounts a fault-injection plan: every subsequent Send consults
// it for drops, duplicates, delays, dial failures, and partitions. The
// plan's own seed governs the fault schedule, so the same (sim seed,
// fault seed) pair reproduces a run exactly. Nil unmounts.
func (s *Sim) SetFaults(plan *faultnet.Plan) { s.faults = plan }

// Peers returns the community (index = PeerID).
func (s *Sim) Peers() []*Peer { return s.peers }

// NumOnline returns how many peers are currently on-line.
func (s *Sim) NumOnline() int { return s.onlineCount }

// At schedules fn at absolute virtual time t (clamped to now).
func (s *Sim) At(t time.Duration, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.events, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn after d.
func (s *Sim) After(d time.Duration, fn func()) { s.At(s.now+d, fn) }

// Run processes events until the horizon (inclusive) or until the event
// queue drains. It returns the number of events processed.
func (s *Sim) Run(until time.Duration) int {
	n := 0
	for len(s.events) > 0 {
		e := s.events[0]
		if e.at > until {
			break
		}
		heap.Pop(&s.events)
		s.now = e.at
		e.fn()
		n++
	}
	if s.now < until {
		s.now = until
	}
	return n
}

// RunUntil processes events until pred returns true (checked after each
// event) or the horizon passes. It reports whether pred was satisfied.
func (s *Sim) RunUntil(until time.Duration, pred func() bool) bool {
	if pred() {
		return true
	}
	for len(s.events) > 0 {
		e := s.events[0]
		if e.at > until {
			break
		}
		heap.Pop(&s.events)
		s.now = e.at
		e.fn()
		if pred() {
			return true
		}
	}
	return false
}

// BandwidthTimeline returns bytes sent per simulated second.
func (s *Sim) BandwidthTimeline() []int64 { return s.bwTimeline }

// accountBytes charges n bytes at the current time.
func (s *Sim) accountBytes(p *Peer, n int) {
	s.TotalBytes += int64(n)
	s.TotalMsgs++
	s.m.bytes.Add(int64(n))
	s.m.msgs.Inc()
	p.BytesSent += int64(n)
	sec := int(s.now / time.Second)
	for len(s.bwTimeline) <= sec {
		s.bwTimeline = append(s.bwTimeline, 0)
	}
	s.bwTimeline[sec] += int64(n)
}

// Peer is one simulated community member. It implements gossip.Env for
// its Node.
type Peer struct {
	sim   *Sim
	ID    directory.PeerID
	Node  *gossip.Node
	Speed LinkSpeed
	rng   *rand.Rand

	online bool
	// linkBusyUntil serializes transfers through this peer's access
	// link (used for both directions — a simple half-duplex model).
	linkBusyUntil time.Duration

	// tickGen invalidates stale scheduled ticks after interval changes
	// or off-line transitions.
	tickGen    uint64
	nextTickAt time.Duration

	BytesSent int64
	BytesRecv int64

	// OnlineSince is when the peer last came on-line.
	OnlineSince time.Duration
}

// errOffline is returned by Send for unreachable targets.
type errOffline struct{ id directory.PeerID }

func (e errOffline) Error() string { return fmt.Sprintf("simnet: peer %d offline", e.id) }

// AddPeer creates a peer with the given link speed, whose directory is
// seeded with the records of the peers in seeds (its bootstrap contacts);
// the peer starts on-line and gossiping. diffSize/payloadSize describe its
// initial Bloom filter (Table 2 wire sizes).
func (s *Sim) AddPeer(speed LinkSpeed, diffSize, payloadSize int, seeds ...directory.PeerID) *Peer {
	if len(s.peers) >= s.capacity {
		panic("simnet: community capacity exceeded")
	}
	id := directory.PeerID(len(s.peers))
	p := &Peer{
		sim:   s,
		ID:    id,
		Speed: speed,
		rng:   rand.New(rand.NewSource(s.seed ^ (int64(id)+1)*int64(0x9e3779b97f4a7c15&0x7fffffffffffffff))),
	}
	rec := directory.Record{
		ID: id, Ver: directory.Version{Epoch: 1},
		Class:       Class(speed),
		DiffSize:    int32(diffSize),
		PayloadSize: int32(payloadSize),
	}
	dir := directory.New(id, s.capacity)
	p.Node = gossip.NewNode(rec, dir, s.cfg, p)
	s.peers = append(s.peers, p)
	for _, seed := range seeds {
		if rec, ok := s.peers[seed].Node.Directory().Get(s.peers[seed].ID); ok {
			dir.Upsert(rec)
		}
	}
	p.online = true
	p.OnlineSince = s.now
	s.onlineCount++
	// First tick at a random phase to avoid lock-step rounds.
	p.scheduleTick(time.Duration(p.rng.Int63n(int64(p.Node.Interval()))))
	return p
}

// Online reports whether the peer is currently on-line.
func (p *Peer) Online() bool { return p.online }

// GoOffline takes the peer off-line: pending ticks are cancelled and
// messages to it fail. Its node state (including its own record version)
// is retained for rejoin.
func (p *Peer) GoOffline() {
	if !p.online {
		return
	}
	p.online = false
	p.tickGen++
	p.sim.onlineCount--
	if p.sim.OnOnlineChange != nil {
		p.sim.OnOnlineChange(p, false)
	}
}

// Restart models a full process restart from durable storage: unlike
// GoOnline (which keeps the node's in-memory state), the peer comes back
// with a FRESH gossip node and directory — everything it knew about the
// community is gone, rebuilt only from the given bootstrap seeds. The
// caller supplies the epoch recovered from disk (already bumped past the
// dead incarnation); the new node announces itself like a joiner, so the
// community's records of the old incarnation are superseded by epoch
// ordering. The peer must be off-line when Restart is called.
func (p *Peer) Restart(epoch uint32, diffSize, payloadSize int, seeds ...directory.PeerID) {
	if p.online {
		panic("simnet: Restart on an on-line peer")
	}
	s := p.sim
	rec := directory.Record{
		ID: p.ID, Ver: directory.Version{Epoch: epoch},
		Class:       Class(p.Speed),
		DiffSize:    int32(diffSize),
		PayloadSize: int32(payloadSize),
	}
	dir := directory.New(p.ID, s.capacity)
	for _, seed := range seeds {
		if srec, ok := s.peers[seed].Node.Directory().Get(s.peers[seed].ID); ok {
			dir.Upsert(srec)
		}
	}
	p.Node = gossip.NewNode(rec, dir, s.cfg, p)
	p.online = true
	p.OnlineSince = s.now
	p.linkBusyUntil = s.now
	s.onlineCount++
	if s.OnOnlineChange != nil {
		s.OnOnlineChange(p, true)
	}
	p.scheduleTick(time.Duration(p.rng.Int63n(int64(time.Second))))
}

// GoOnline brings the peer back, announcing a rejoin (Epoch bump). If the
// peer returns with new content, diffSize > 0 carries the new diff size.
func (p *Peer) GoOnline(diffSize int) {
	if p.online {
		return
	}
	p.online = true
	p.OnlineSince = p.sim.now
	p.sim.onlineCount++
	p.Node.Rejoin(diffSize, int(p.Node.SelfRecord().PayloadSize), nil)
	if p.sim.OnOnlineChange != nil {
		p.sim.OnOnlineChange(p, true)
	}
	p.scheduleTick(time.Duration(p.rng.Int63n(int64(time.Second))))
}

// scheduleTick arms the next gossip round after d.
func (p *Peer) scheduleTick(d time.Duration) {
	p.tickGen++
	gen := p.tickGen
	p.nextTickAt = p.sim.now + d
	p.sim.After(d, func() {
		if gen != p.tickGen || !p.online {
			return
		}
		// Sender-side backpressure: while this peer's link has a deep
		// transmit queue, defer the round until it drains — a real
		// TCP sender would be stalled anyway.
		if bl := p.sim.params.SendBacklog; bl > 0 && p.linkBusyUntil > p.sim.now+bl {
			p.scheduleTick(p.linkBusyUntil - p.sim.now)
			return
		}
		p.Node.Tick()
		if p.online { // Tick may have discovered us alone; stay armed
			p.scheduleTick(p.Node.Interval())
		}
	})
}

// --- gossip.Env implementation ---

// Now implements gossip.Env.
func (p *Peer) Now() time.Duration { return p.sim.now }

// Rand implements gossip.Env.
func (p *Peer) Rand() *rand.Rand { return p.rng }

// IntervalChanged implements gossip.Env: if the node's interval shrank
// (news arrived), pull the pending tick earlier.
func (p *Peer) IntervalChanged(d time.Duration) {
	if !p.online {
		return
	}
	want := p.sim.now + d
	if want < p.nextTickAt {
		p.scheduleTick(d)
	}
}

// Send implements gossip.Env: transfer m to peer `to` through both access
// links, delivering after the store-and-forward time, latency, and CPU
// cost. Sending to an off-line peer fails immediately (modeling the
// failed-connect detection of Section 3).
func (p *Peer) Send(to directory.PeerID, m *gossip.Message) error {
	s := p.sim
	if int(to) < 0 || int(to) >= len(s.peers) {
		return errOffline{to}
	}
	target := s.peers[to]
	if !target.online {
		s.FailedSends++
		s.m.failedSends.Inc()
		return errOffline{to}
	}
	// Receiver-side overload: a peer whose link queue is hopelessly deep
	// times out connections, which the sender cannot distinguish from
	// the peer being dead (it will be marked off-line until next heard
	// from).
	if bl := s.params.RecvBacklog; bl > 0 && target.linkBusyUntil > s.now+bl {
		s.FailedSends++
		s.m.failedSends.Inc()
		return errOffline{to}
	}
	// Injected faults: partitions and dial failures error at the sender
	// (exactly like a dead peer); drops, delays, and duplicates are
	// decided now and applied below.
	var fate faultnet.Fate
	if s.faults != nil {
		fate = s.faults.Fate(s.now, p.ID, to)
		if fate.Failed() {
			s.FailedSends++
			s.m.failedSends.Inc()
			return errOffline{to}
		}
	}
	size := m.WireSize(s.cfg.Sizes)
	s.accountBytes(p, size)
	target.BytesRecv += int64(size)

	bits := float64(size * 8)
	sendStart := maxDur(s.now, p.linkBusyUntil)
	sendDone := sendStart + time.Duration(bits/float64(p.Speed)*float64(time.Second))
	p.linkBusyUntil = sendDone
	arrive := sendDone + s.params.Latency
	recvStart := maxDur(arrive, target.linkBusyUntil)
	recvDone := recvStart + time.Duration(bits/float64(target.Speed)*float64(time.Second))
	target.linkBusyUntil = recvDone
	deliverAt := recvDone + s.params.CPUTime
	// Queueing delay: time the message spent waiting for either access
	// link, beyond pure transmission + propagation.
	queued := (sendStart - s.now) + (recvStart - arrive)
	s.m.queueDelayMS.Observe(queued.Milliseconds())

	// An injected drop is a silent loss: the sender transmitted (bytes
	// and link time are charged) but nothing arrives.
	if fate.Drop {
		return nil
	}
	deliverAt += fate.Delay

	from := p.ID
	deliver := func() {
		if !target.online {
			return // went off-line in flight; message lost
		}
		target.Node.Receive(from, m)
		if s.AfterDeliver != nil {
			s.AfterDeliver(target, from, m)
		}
	}
	s.At(deliverAt, deliver)
	if fate.Dup {
		s.At(deliverAt+fate.DupDelay, deliver)
	}
	return nil
}

// ExchangePeers implements gossip.PeerExchanger: a synchronous
// peer-exchange RPC against target `to`, returning a bounded random
// sample of its known-on-line records. Unlike Send, delivery is immediate
// — the exchange is a small request/response an order of magnitude
// shorter than a gossip interval, so modeling its transfer time buys
// nothing — but the request and reply bytes are still charged to both
// links (request ≈ one header + one compact entry; reply ≈ one record
// summary per sample). Fault plans apply: a partition or dial failure
// errors at the sender, a drop loses the reply.
func (p *Peer) ExchangePeers(to directory.PeerID, max int) ([]directory.Record, error) {
	s := p.sim
	if int(to) < 0 || int(to) >= len(s.peers) {
		return nil, errOffline{to}
	}
	target := s.peers[to]
	if !target.online {
		s.FailedSends++
		s.m.failedSends.Inc()
		return nil, errOffline{to}
	}
	if s.faults != nil {
		fate := s.faults.Fate(s.now, p.ID, to)
		if fate.Failed() || fate.Drop {
			s.FailedSends++
			s.m.failedSends.Inc()
			return nil, errOffline{to}
		}
	}
	sz := s.cfg.Sizes
	s.accountBytes(p, sz.Header+sz.BFSummary)
	target.BytesRecv += int64(sz.Header + sz.BFSummary)
	recs := target.Node.Directory().SampleOnline(target.rng, max)
	reply := sz.Header + len(recs)*sz.PeerSummary
	s.accountBytes(target, reply)
	p.BytesRecv += int64(reply)
	return recs, nil
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// BuildCommunity constructs a stable community of n peers drawn from the
// profile, each sharing an initial filter with the given wire sizes, all
// mutually known (a converged starting point for experiments). Speeds are
// assigned deterministically from the profile fractions (largest
// remainder), then shuffled.
func BuildCommunity(s *Sim, n int, profile []MixFraction, diffSize, payloadSize int) {
	speeds := make([]LinkSpeed, 0, n)
	assigned := 0
	for i, mf := range profile {
		cnt := int(mf.Frac*float64(n) + 0.5)
		if i == len(profile)-1 {
			cnt = n - assigned
		}
		if assigned+cnt > n {
			cnt = n - assigned
		}
		for j := 0; j < cnt; j++ {
			speeds = append(speeds, mf.Speed)
		}
		assigned += cnt
	}
	for len(speeds) < n {
		speeds = append(speeds, profile[len(profile)-1].Speed)
	}
	s.rng.Shuffle(len(speeds), func(i, j int) { speeds[i], speeds[j] = speeds[j], speeds[i] })
	for i := 0; i < n; i++ {
		s.AddPeer(speeds[i], diffSize, payloadSize)
	}
	// Converged start: every peer knows every record.
	records := make([]directory.Record, n)
	for i, p := range s.peers[:n] {
		records[i] = p.Node.SelfRecord()
	}
	for _, p := range s.peers[:n] {
		dir := p.Node.Directory()
		for _, rec := range records {
			dir.Upsert(rec)
		}
		// The community starts quiet: join rumors are considered fully
		// spread, so an experiment measures only the events it injects.
		p.Node.Quiesce()
	}
}
